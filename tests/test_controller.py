"""Unit tests for the METIS controller and its ablation switches."""

import pytest

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.core import MetisConfig, MetisPolicy
from repro.core.policy import SchedulingView
from repro.core.profiles import QueryProfile
from repro.core.policy import PrepResult
from repro.synthesis import make_synthesizer

KV_BYTES = 131_072


def make_view(available_tokens: float, chunk_tokens: int = 500,
              query_tokens: int = 30) -> SchedulingView:
    def estimate(config: RAGConfig):
        return make_synthesizer(config.synthesis_method).build_plan(
            query_id="est", query_tokens=query_tokens,
            chunk_tokens=[chunk_tokens] * config.num_chunks,
            answer_tokens=20, config=config,
        )

    return SchedulingView(
        now=0.0, free_kv_bytes=available_tokens * KV_BYTES,
        available_kv_bytes=available_tokens * KV_BYTES,
        kv_bytes_per_token=KV_BYTES, chunk_tokens=chunk_tokens,
        query_tokens=query_tokens, answer_tokens=20, estimate_plan=estimate,
    )


def make_policy(**config_kwargs) -> MetisPolicy:
    return MetisPolicy(metadata_tokens=40, chunk_tokens=500,
                       config=MetisConfig(**config_kwargs), seed=0)


def prep_with(profile: QueryProfile) -> PrepResult:
    return PrepResult(profile=profile, api_seconds=0.1, dollars=1e-4)


def profile(joint=True, high=True, pieces=3, conf=0.95):
    return QueryProfile(complexity_high=high, joint_reasoning=joint,
                        pieces=pieces, summary_range=(60, 120),
                        confidence=conf)


class TestDecisions:
    def test_basic_decision_within_pruned_space(self, finsec_bundle):
        policy = make_policy()
        q = finsec_bundle.queries[0]
        decision = policy.choose(q, prep_with(profile()), make_view(1e6))
        assert decision.pruned_space is not None
        assert decision.pruned_space.contains(decision.config)

    def test_prepare_runs_profiler(self, finsec_bundle):
        policy = make_policy()
        prep = policy.prepare(finsec_bundle.queries[0])
        assert prep.profile is not None
        assert prep.api_seconds > 0

    def test_memory_pressure_shrinks_choice(self, finsec_bundle):
        policy = make_policy()
        q = finsec_bundle.queries[0]
        rich = policy.choose(q, prep_with(profile()), make_view(1e6))
        poor = policy.choose(q, prep_with(profile()), make_view(2_000))
        assert poor.config.num_chunks <= rich.config.num_chunks


class TestConfidenceFallback:
    def test_low_confidence_uses_recent_spaces(self, finsec_bundle):
        policy = make_policy()
        q = finsec_bundle.queries[0]
        # Two confident decisions populate the history.
        policy.choose(q, prep_with(profile(pieces=2, conf=0.99)), make_view(1e6))
        policy.choose(q, prep_with(profile(pieces=3, conf=0.99)), make_view(1e6))
        low = policy.choose(q, prep_with(profile(pieces=9, conf=0.5)),
                            make_view(1e6))
        assert low.used_recent_spaces
        # The merged recent range tops out at 3*3=9 chunks, far below
        # what pieces=9 would have mapped to (27).
        assert low.config.num_chunks <= 9

    def test_low_confidence_without_history_uses_profile(self, finsec_bundle):
        policy = make_policy()
        q = finsec_bundle.queries[0]
        decision = policy.choose(q, prep_with(profile(conf=0.5)),
                                 make_view(1e6))
        assert not decision.used_recent_spaces

    def test_fallback_disabled(self, finsec_bundle):
        policy = make_policy(enable_confidence_fallback=False)
        q = finsec_bundle.queries[0]
        policy.choose(q, prep_with(profile(conf=0.99)), make_view(1e6))
        low = policy.choose(q, prep_with(profile(conf=0.5)), make_view(1e6))
        assert not low.used_recent_spaces

    def test_low_confidence_profiles_not_recorded(self, finsec_bundle):
        policy = make_policy()
        q = finsec_bundle.queries[0]
        policy.choose(q, prep_with(profile(pieces=2, conf=0.5)), make_view(1e6))
        assert len(policy._recent_spaces) == 0


class TestKnobSwitches:
    def test_disable_synthesis_forces_stuff(self, finsec_bundle):
        policy = make_policy(adapt_synthesis=False)
        q = finsec_bundle.queries[0]
        decision = policy.choose(q, prep_with(profile(joint=False)),
                                 make_view(1e6))
        assert decision.config.synthesis_method is SynthesisMethod.STUFF

    def test_disable_chunks_pins_value(self, finsec_bundle):
        policy = make_policy(adapt_num_chunks=False, fixed_num_chunks=7)
        q = finsec_bundle.queries[0]
        decision = policy.choose(q, prep_with(profile(pieces=2)),
                                 make_view(1e6))
        assert decision.config.num_chunks == 7

    def test_disable_ilen_pins_value(self, finsec_bundle):
        policy = make_policy(adapt_intermediate_length=False,
                             fixed_intermediate_length=123)
        q = finsec_bundle.queries[0]
        decision = policy.choose(q, prep_with(profile(high=True)),
                                 make_view(1e6))
        if decision.config.synthesis_method is SynthesisMethod.MAP_REDUCE:
            assert decision.config.intermediate_length == 123


class TestSelectionModes:
    def test_median_mode(self, finsec_bundle):
        policy = make_policy(selection_mode="median", memory_aware=False)
        q = finsec_bundle.queries[0]
        decision = policy.choose(q, prep_with(profile(pieces=4)),
                                 make_view(1e6))
        assert decision.config.num_chunks == 8  # median of [4, 12]

    def test_max_mode(self, finsec_bundle):
        policy = make_policy(selection_mode="max", memory_aware=False)
        q = finsec_bundle.queries[0]
        decision = policy.choose(q, prep_with(profile(pieces=4)),
                                 make_view(1e6))
        assert decision.config.num_chunks == 12

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            make_policy(selection_mode="random")

    def test_describe_mentions_mode(self):
        assert "median" in make_policy(selection_mode="median").describe()


class TestFeedbackIntegration:
    def test_feedback_disabled_by_default(self):
        assert make_policy().feedback is None

    def test_feedback_enabled(self, finsec_bundle):
        policy = make_policy(enable_feedback=True)
        assert policy.feedback is not None
        q = finsec_bundle.queries[0]
        for _ in range(30):
            policy.on_complete(q, 0.5, 1.0)
        assert policy.feedback.n_active_prompts >= 1
