"""Unit tests for SLO analysis."""

import pytest

from repro.baselines import FixedConfigPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data.workload import poisson_arrivals
from repro.evaluation.runner import ExperimentRunner
from repro.evaluation.slo import evaluate_slo, goodput_qps, required_budget


@pytest.fixture(scope="module")
def run_result(finsec_bundle):
    from repro.experiments.common import default_engine_config

    runner = ExperimentRunner(finsec_bundle, default_engine_config(), seed=0)
    arrivals = poisson_arrivals(finsec_bundle.queries, 1.2, seed=0)
    return runner.run(
        FixedConfigPolicy(RAGConfig(SynthesisMethod.STUFF, 8)), arrivals
    )


# Module-scoped bundle fixture lives in conftest at session scope; the
# run itself is cached per module above.
@pytest.fixture(scope="module")
def finsec_bundle():
    from repro.data import build_dataset

    return build_dataset("finsec", n_queries=30)


class TestEvaluateSlo:
    def test_generous_slo_full_attainment(self, run_result):
        report = evaluate_slo(run_result, slo_seconds=1e6)
        assert report.attainment == 1.0
        assert report.n_within == report.n_queries
        assert report.worst_excess_seconds == 0.0
        assert report.meets(0.99)

    def test_impossible_slo_zero_attainment(self, run_result):
        report = evaluate_slo(run_result, slo_seconds=1e-6)
        assert report.attainment == 0.0
        assert report.worst_excess_seconds > 0
        assert not report.meets(0.5)

    def test_attainment_monotone_in_budget(self, run_result):
        budgets = (0.5, 1.0, 2.0, 5.0, 20.0)
        attainments = [
            evaluate_slo(run_result, b).attainment for b in budgets
        ]
        assert attainments == sorted(attainments)

    def test_goodput_bounded_by_throughput(self, run_result):
        assert (goodput_qps(run_result, 2.0)
                <= run_result.throughput_qps + 1e-9)

    def test_rejects_bad_slo(self, run_result):
        with pytest.raises(ValueError):
            evaluate_slo(run_result, 0.0)


class TestRequiredBudget:
    def test_budget_achieves_attainment(self, run_result):
        budget = required_budget(run_result, target_attainment=0.9)
        report = evaluate_slo(run_result, budget)
        assert report.attainment >= 0.9

    def test_budget_monotone_in_target(self, run_result):
        assert (required_budget(run_result, 0.5)
                <= required_budget(run_result, 0.99))

    def test_full_attainment_is_max_delay(self, run_result):
        budget = required_budget(run_result, 1.0)
        max_delay = max(r.e2e_delay for r in run_result.records)
        assert budget == pytest.approx(max_delay)
