"""Golden-trace regression: the cluster layer adds zero behavioral drift.

A fixed-seed 50-request workload is driven through a bare
:class:`ServingEngine` and through a 1-replica :class:`ClusterEngine`
(every router), interleaving arrivals with engine iterations exactly
like the experiment runner. The two :class:`StepInfo` sequences must be
identical step for step — same clock values, same batch compositions,
same admission/finish order.
"""

from __future__ import annotations

import pytest

from repro.llm import A40, ClusterSpec, MISTRAL_7B_AWQ
from repro.serving import (
    ClusterEngine,
    EngineConfig,
    InferenceRequest,
    ServingEngine,
)
from repro.serving.cluster import ROUTER_NAMES
from repro.util.rng import RngStreams
from repro.util.units import GB

N_REQUESTS = 50
GOLDEN_SEED = 1234


def build_config(policy: str) -> EngineConfig:
    return EngineConfig(
        model=MISTRAL_7B_AWQ,
        cluster=ClusterSpec(A40),
        kv_pool_cap_bytes=1 * GB,  # tight enough that admission stalls
        policy=policy,
    )


def request_specs(seed: int = GOLDEN_SEED) -> list[dict]:
    rng = RngStreams(seed).get("golden", "workload")
    specs: list[dict] = []
    t = 0.0
    for _ in range(N_REQUESTS):
        t += float(rng.exponential(0.05))
        specs.append(dict(
            prompt_tokens=int(rng.integers(50, 2_500)),
            output_tokens=int(rng.integers(1, 40)),
            arrival_time=t,
            app_id=f"app-{int(rng.integers(0, 12))}",
        ))
    return specs


def normalize(info, idx: dict[int, int]) -> tuple:
    """A StepInfo as comparable values (request ids -> submit order)."""
    return (
        info.start,
        info.duration,
        info.prefill_tokens,
        info.n_prefill_seqs,
        info.n_decode_seqs,
        info.kv_tokens_in_batch,
        tuple(idx[r.request_id] for r in info.admitted),
        tuple(idx[r.request_id] for r in info.finished),
    )


def drive(engine, specs: list[dict]) -> list[tuple]:
    """Runner-style loop: step while the clock trails the next arrival."""
    idx: dict[int, int] = {}
    trace: list[tuple] = []
    i = 0
    while i < len(specs) or engine.has_work():
        next_t = specs[i]["arrival_time"] if i < len(specs) else float("inf")
        if engine.has_work() and engine.now < next_t:
            info = engine.step()
            if hasattr(info, "info"):  # ClusterStepInfo
                assert info.replica_id == 0
                info = info.info
            trace.append(normalize(info, idx))
            continue
        if i >= len(specs):
            break
        engine.advance_to(next_t)
        request = InferenceRequest(**specs[i])
        engine.submit(request)
        idx[request.request_id] = i
        i += 1
    return trace


@pytest.mark.parametrize("policy", ["fcfs", "app-aware"])
def test_one_replica_cluster_is_trace_identical(policy):
    specs = request_specs()
    golden = drive(ServingEngine(build_config(policy)), specs)
    assert len(golden) > N_REQUESTS  # sanity: real multi-iteration run

    for router in ROUTER_NAMES:
        cluster = ClusterEngine(build_config(policy), n_replicas=1,
                                router=router, seed=GOLDEN_SEED)
        trace = drive(cluster, specs)
        # Byte-for-byte: same floats, same batches, same orderings.
        assert repr(trace) == repr(golden), f"router {router} drifted"


def test_golden_trace_is_seed_stable():
    """The same seed replays the same trace across engine instances."""
    specs = request_specs()
    a = drive(ServingEngine(build_config("fcfs")), specs)
    b = drive(ServingEngine(build_config("fcfs")), specs)
    assert a == b
