"""Unit + property tests for RAG configuration knobs and spaces."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import (
    ConfigurationSpace,
    PrunedSpace,
    RAGConfig,
    SynthesisMethod,
    full_grid,
)


class TestRAGConfig:
    def test_canonicalises_ilen_for_non_map_reduce(self):
        c = RAGConfig(SynthesisMethod.STUFF, 5, intermediate_length=100)
        assert c.intermediate_length == 0

    def test_map_reduce_requires_ilen(self):
        with pytest.raises(ValueError, match="intermediate_length"):
            RAGConfig(SynthesisMethod.MAP_REDUCE, 5)

    def test_rejects_bad_chunks(self):
        with pytest.raises(ValueError):
            RAGConfig(SynthesisMethod.STUFF, 0)

    def test_rejects_non_enum_method(self):
        with pytest.raises(TypeError):
            RAGConfig("stuff", 5)

    def test_equality_and_hash(self):
        a = RAGConfig(SynthesisMethod.STUFF, 5, 99)  # ilen canonicalised
        b = RAGConfig(SynthesisMethod.STUFF, 5)
        assert a == b
        assert hash(a) == hash(b)

    def test_labels(self):
        assert RAGConfig(SynthesisMethod.STUFF, 5).label() == "stuff/k=5"
        assert (RAGConfig(SynthesisMethod.MAP_REDUCE, 8, 100).label()
                == "map_reduce/k=8/l=100")

    def test_method_properties(self):
        assert not SynthesisMethod.MAP_RERANK.reads_chunks_jointly
        assert SynthesisMethod.STUFF.reads_chunks_jointly
        assert SynthesisMethod.MAP_REDUCE.uses_intermediate_length
        assert not SynthesisMethod.STUFF.uses_intermediate_length


class TestConfigurationSpace:
    def test_full_grid_size(self):
        # 11 rerank + 11 stuff + 11*6 map_reduce = 88
        assert len(full_grid()) == 88

    def test_contains(self):
        grid = full_grid()
        assert RAGConfig(SynthesisMethod.STUFF, 5) in grid
        assert RAGConfig(SynthesisMethod.STUFF, 7) not in grid

    def test_filter(self):
        grid = full_grid()
        sub = grid.filter(lambda c: c.synthesis_method is SynthesisMethod.STUFF)
        assert len(sub) == 11

    def test_filter_empty_returns_none(self):
        assert full_grid().filter(lambda c: False) is None

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            ConfigurationSpace(())


class TestPrunedSpace:
    def space(self, methods=(SynthesisMethod.STUFF, SynthesisMethod.MAP_REDUCE),
              chunks=(3, 9), ilen=(50, 150), steps=4):
        return PrunedSpace(methods=methods, num_chunks_range=chunks,
                           intermediate_length_range=ilen, ilen_steps=steps)

    def test_enumerate_counts(self):
        space = self.space()
        # stuff: 7 k-values; map_reduce: 7 * 4 ilen values.
        assert len(space.enumerate()) == 7 + 7 * 4

    def test_contains_uses_ranges(self):
        space = self.space()
        assert space.contains(RAGConfig(SynthesisMethod.MAP_REDUCE, 5, 77))
        assert not space.contains(RAGConfig(SynthesisMethod.MAP_REDUCE, 5, 200))
        assert not space.contains(RAGConfig(SynthesisMethod.MAP_RERANK, 5))
        assert not space.contains(RAGConfig(SynthesisMethod.STUFF, 10))

    def test_median_config(self):
        space = self.space()
        median = space.median_config()
        assert median.num_chunks == 6
        assert median.synthesis_method is SynthesisMethod.MAP_REDUCE
        assert median.intermediate_length == 100

    def test_most_expensive_config(self):
        config = self.space().most_expensive_config()
        assert config == RAGConfig(SynthesisMethod.MAP_REDUCE, 9, 150)

    def test_merge_unions_ranges(self):
        a = self.space(chunks=(3, 9), ilen=(50, 150))
        b = self.space(methods=(SynthesisMethod.MAP_RERANK,),
                       chunks=(1, 4), ilen=(100, 200))
        merged = a.merge(b)
        assert merged.num_chunks_range == (1, 9)
        assert merged.intermediate_length_range == (50, 200)
        assert SynthesisMethod.MAP_RERANK in merged.methods
        assert SynthesisMethod.STUFF in merged.methods

    def test_reduction_factor_positive(self):
        assert self.space().reduction_factor() > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self.space(chunks=(5, 3))
        with pytest.raises(ValueError):
            self.space(ilen=(0, 10))
        with pytest.raises(ValueError):
            PrunedSpace(methods=(), num_chunks_range=(1, 2))

    @given(st.integers(1, 30), st.integers(0, 20),
           st.integers(20, 100), st.integers(0, 150))
    def test_enumerated_configs_all_contained(self, lo, span, ilo, ispan):
        space = PrunedSpace(
            methods=(SynthesisMethod.MAP_REDUCE,),
            num_chunks_range=(lo, lo + span),
            intermediate_length_range=(ilo, ilo + ispan),
        )
        for config in space.enumerate():
            assert space.contains(config)
