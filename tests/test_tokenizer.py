"""Unit tests for the deterministic tokenizer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.llm.tokenizer import SimTokenizer

tok = SimTokenizer()


class TestTokenize:
    def test_simple_words(self):
        assert tok.tokenize("the cat sat") == ["the", "cat", "sat"]

    def test_lowercases(self):
        assert tok.tokenize("The CAT") == ["the", "cat"]

    def test_punctuation_is_separate_tokens(self):
        assert tok.tokenize("hello, world!") == ["hello", ",", "world", "!"]

    def test_long_words_split_into_pieces(self):
        pieces = tok.tokenize("extraordinary")
        assert pieces == ["extr", "aord", "inar", "y"]

    def test_six_letter_word_is_single_token(self):
        assert tok.tokenize("stadium") != ["stadium"]  # 7 letters → split
        assert tok.tokenize("stadia") == ["stadia"]  # 6 letters → whole

    def test_numbers_tokenize(self):
        assert tok.tokenize("q1 2024") == ["q1", "2024"]

    def test_empty_string(self):
        assert tok.tokenize("") == []

    def test_whitespace_only(self):
        assert tok.tokenize("  \n\t ") == []


class TestCount:
    def test_count_matches_tokenize(self):
        text = "Compare NVIDIA's operating cost over the first three quarters."
        assert tok.count(text) == len(tok.tokenize(text))

    @given(st.text(max_size=300))
    def test_count_always_matches_tokenize(self, text):
        assert tok.count(text) == len(tok.tokenize(text))

    def test_count_is_deterministic(self):
        text = "hello world " * 50
        assert tok.count(text) == tok.count(text)


class TestTruncate:
    def test_no_truncation_needed(self):
        assert tok.truncate("one two three", 10) == "one two three"

    def test_truncates_to_budget(self):
        text = "alpha beta gamma delta epsilon"
        out = tok.truncate(text, 3)
        assert tok.count(out) <= 3
        assert text.startswith(out)

    def test_zero_budget_gives_empty(self):
        assert tok.truncate("anything here", 0) == ""

    @given(st.text(alphabet="abcdef ghij", max_size=200),
           st.integers(min_value=1, max_value=30))
    def test_truncate_respects_budget(self, text, budget):
        assert tok.count(tok.truncate(text, budget)) <= budget


@pytest.mark.parametrize("text,expected_min", [
    ("a b c", 3),
    ("punctuation, everywhere!", 3),
])
def test_token_floor(text, expected_min):
    assert tok.count(text) >= expected_min
