"""Unit tests for the CI benchmark regression gate
(``benchmarks/check_regression.py``): direction-aware comparison,
metric extraction, and the baseline/artifact mismatch failure modes."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
# Registered before exec: dataclass field resolution looks the module
# up in sys.modules.
sys.modules["check_regression"] = check_regression
_spec.loader.exec_module(check_regression)

Metric = check_regression.Metric
compare = check_regression.compare
extract_metrics = check_regression.extract_metrics


class TestCompare:
    def test_throughput_drop_is_regression(self):
        metric = Metric("events_per_sec", higher_better=True)
        regressed, change = compare(metric, 100.0, 70.0, tolerance=0.25)
        assert regressed and change == pytest.approx(0.30)

    def test_throughput_drop_within_tolerance_passes(self):
        metric = Metric("events_per_sec", higher_better=True)
        regressed, change = compare(metric, 100.0, 80.0, tolerance=0.25)
        assert not regressed and change == pytest.approx(0.20)

    def test_latency_rise_is_regression(self):
        metric = Metric("p99_retrieval_s", higher_better=False)
        regressed, change = compare(metric, 1.0, 1.4, tolerance=0.25)
        assert regressed and change == pytest.approx(0.40)

    def test_improvements_always_pass(self):
        faster = Metric("events_per_sec", higher_better=True)
        assert compare(faster, 100.0, 500.0, tolerance=0.25) == (False, -4.0)
        lower = Metric("p99_retrieval_s", higher_better=False)
        regressed, change = compare(lower, 1.0, 0.2, tolerance=0.25)
        assert not regressed and change == pytest.approx(-0.8)

    def test_zero_baseline_never_divides(self):
        metric = Metric("events_per_sec", higher_better=True)
        assert compare(metric, 0.0, 10.0, tolerance=0.25) == (False, 0.0)


class TestExtraction:
    def test_cluster_events_gates_events_per_sec(self):
        metrics = extract_metrics("bench_cluster_events.json",
                                  {"events_per_sec": 50_000.0})
        (metric, value), = metrics.values()
        assert metric.wall_clock and metric.higher_better
        assert value == 50_000.0

    def test_kernel_micro_gates_ops_per_sec(self):
        metrics = extract_metrics("kernel_micro.json",
                                  {"ops_per_sec": 1_000_000.0})
        (metric, value), = metrics.values()
        assert metric.wall_clock and metric.higher_better
        assert value == 1_000_000.0

    def test_shard_sweep_keys_rows_by_shards_and_reranker(self):
        payload = {"rows": [
            {"shards": 1, "reranker": "off", "throughput_qps": 1.5,
             "mean_retrieval_s": 0.9, "p99_retrieval_s": 2.2},
            {"shards": 4, "reranker": "exact", "throughput_qps": 1.4,
             "mean_retrieval_s": 0.6, "p99_retrieval_s": 0.9},
        ]}
        metrics = extract_metrics("retrieval_shard_sweep.json", payload)
        assert "shards=1,reranker=off:throughput_qps" in metrics
        assert "shards=4,reranker=exact:p99_retrieval_s" in metrics
        assert len(metrics) == 6
        # Simulated numbers are deterministic, not wall-clock floors.
        assert not any(m.wall_clock for m, _ in metrics.values())

    def test_autoscale_keys_rows_by_fleet(self):
        payload = {"rows": [
            {"fleet": "static-3", "slo_attainment": 1.0,
             "dollars_per_query": 5.4e-4, "p99_delay_s": 1.4,
             "scale_ups": 0, "retires": 0},
            {"fleet": "forecast", "slo_attainment": 1.0,
             "dollars_per_query": 3.3e-4, "p99_delay_s": 2.4,
             "scale_ups": 4, "retires": 4},
        ]}
        metrics = extract_metrics("autoscale_trace.json", payload)
        assert "fleet=forecast:dollars_per_query" in metrics
        assert "fleet=static-3:slo_attainment" in metrics
        # Event counts ride in the artifact but are not gated.
        assert len(metrics) == 6
        assert not any(m.wall_clock for m, _ in metrics.values())
        assert metrics["fleet=forecast:slo_attainment"][0].higher_better
        assert not metrics["fleet=forecast:p99_delay_s"][0].higher_better

    def test_cache_zipf_gates_hit_rates_and_throughput(self):
        metrics = extract_metrics("cache_zipf.json", {
            "hit_rate": 0.93, "result_hit_rate": 0.91,
            "events_per_sec": 30_000.0})
        assert len(metrics) == 3
        # Hit rates are seeded-deterministic; only the throughput is a
        # wall-clock floor.
        assert not metrics["hit_rate"][0].wall_clock
        assert metrics["hit_rate"][0].higher_better
        assert not metrics["result_hit_rate"][0].wall_clock
        assert metrics["events_per_sec"][0].wall_clock

    def test_decide_micro_gates_throughput_and_speedup(self):
        metrics = extract_metrics("decide_micro.json", {
            "decisions_per_sec": 100_000.0, "speedup_vs_plans": 20.0})
        assert len(metrics) == 2
        # Both machine-dependent: gated as de-rated wall-clock floors.
        assert metrics["decisions_per_sec"][0].wall_clock
        assert metrics["decisions_per_sec"][0].higher_better
        assert metrics["speedup_vs_plans"][0].wall_clock

    def test_unknown_artifact_rejected(self):
        with pytest.raises(ValueError, match="no metric spec"):
            extract_metrics("bench_unknown.json", {})


class TestGateEndToEnd:
    """Drive the gate against scratch artifact/baseline dirs."""

    @pytest.fixture()
    def dirs(self, tmp_path, monkeypatch):
        artifacts = tmp_path / "artifacts"
        baselines = tmp_path / "baselines"
        artifacts.mkdir()
        baselines.mkdir()
        monkeypatch.setattr(check_regression, "ARTIFACT_DIR", artifacts)
        monkeypatch.setattr(check_regression, "BASELINE_DIR", baselines)
        return artifacts, baselines

    def write(self, root: Path, events: float, qps: float) -> None:
        (root / "bench_cluster_events.json").write_text(json.dumps(
            {"events_per_sec": events}))
        (root / "kernel_micro.json").write_text(json.dumps(
            {"ops_per_sec": events * 10.0}))
        (root / "decide_micro.json").write_text(json.dumps(
            {"decisions_per_sec": events * 2.0,
             "speedup_vs_plans": 25.0}))
        (root / "retrieval_shard_sweep.json").write_text(json.dumps(
            {"rows": [{"shards": 1, "reranker": "off",
                       "throughput_qps": qps, "mean_retrieval_s": 0.5,
                       "p99_retrieval_s": 1.0}]}))
        (root / "autoscale_trace.json").write_text(json.dumps(
            {"rows": [{"fleet": "forecast", "slo_attainment": 1.0,
                       "dollars_per_query": 3.3e-4,
                       "p99_delay_s": 2.4}]}))
        (root / "cache_zipf.json").write_text(json.dumps(
            {"hit_rate": 0.9, "result_hit_rate": 0.88,
             "events_per_sec": events}))

    def test_matching_numbers_pass(self, dirs, capsys):
        artifacts, baselines = dirs
        self.write(artifacts, 50_000.0, 1.5)
        self.write(baselines, 50_000.0, 1.5)
        assert check_regression.run_gate(tolerance=0.25) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_regression_fails_and_names_the_metric(self, dirs, capsys):
        artifacts, baselines = dirs
        self.write(artifacts, 20_000.0, 1.5)  # 60% events/sec drop
        self.write(baselines, 50_000.0, 1.5)
        assert check_regression.run_gate(tolerance=0.25) == 1
        err = capsys.readouterr().err
        assert "events_per_sec regressed 60.0%" in err

    def test_missing_baseline_fails_loudly(self, dirs, capsys):
        artifacts, _ = dirs
        self.write(artifacts, 50_000.0, 1.5)
        assert check_regression.run_gate(tolerance=0.25) == 1
        assert "no committed baseline" in capsys.readouterr().err

    def test_update_derates_wall_clock_only(self, dirs):
        artifacts, baselines = dirs
        self.write(artifacts, 50_000.0, 1.5)
        assert check_regression.update_baselines() == 0
        events = json.loads(
            (baselines / "bench_cluster_events.json").read_text())
        assert events["events_per_sec"] == pytest.approx(
            50_000.0 * check_regression.WALL_CLOCK_DERATE)
        sweep = json.loads(
            (baselines / "retrieval_shard_sweep.json").read_text())
        assert sweep["rows"][0]["throughput_qps"] == 1.5  # untouched
        # And the freshly updated baselines gate green.
        assert check_regression.run_gate(tolerance=0.25) == 0

    def test_repo_baselines_are_committed_and_coherent(self):
        """The real baselines exist and parse through the extractors."""
        for name in check_regression.GATED_ARTIFACTS:
            path = Path(_SCRIPT).parent / "baselines" / name
            assert path.exists(), f"missing committed baseline {name}"
            metrics = extract_metrics(name, json.loads(path.read_text()))
            assert metrics
