"""Parallel sweep runner: determinism, merge equality, CLI surface.

The load-bearing test is sequential-vs-parallel canonical-JSON
equality: per-seed simulations are pure functions of their parameters,
so fanning cells across processes must reproduce the exact sequential
results. (Wall-clock speedup is intentionally *not* asserted — it
requires multiple physical cores; see docs/PERFORMANCE.md.)
"""

import json

import pytest

from repro.cli import main
from repro.sweep import (
    CELL_DEFAULTS,
    canonical_json,
    expand_cells,
    run_cell,
    sweep,
)

# Small, fast cells: fixed-config baseline (no profiling stage), tiny
# query count. Big enough to exercise the full serve/score pipeline.
BASE = dict(dataset="finsec", policy="vllm", config="stuff/4", queries=3)


def test_expand_cells_grid_order():
    cells = expand_cells(BASE, seeds=[0, 1], rates=[1.0, 2.0])
    assert len(cells) == 4
    assert [(c["seed"], c["rate"]) for c in cells] == [
        (0, 1.0), (0, 2.0), (1, 1.0), (1, 2.0)
    ]
    # Axes default to the base values when omitted.
    assert expand_cells(BASE)[0]["seed"] == 0
    assert len(expand_cells(BASE, seeds=[7])) == 1


def test_unknown_cell_parameter_rejected():
    with pytest.raises(ValueError, match="unknown sweep cell parameter"):
        run_cell({**BASE, "polciy": "metis"})
    with pytest.raises(ValueError, match="unknown sweep cell parameter"):
        sweep([{"no_such_knob": 1}])


def test_run_cell_returns_params_and_summary():
    out = run_cell({**BASE, "seed": 3})
    assert set(out) == {"params", "summary"}
    assert out["params"]["seed"] == 3
    # Defaults are filled in so the payload is self-describing.
    assert set(CELL_DEFAULTS) <= set(out["params"])
    assert out["summary"]["throughput_qps"] > 0


def test_cells_are_independent_of_sweep_company():
    """A cell's result does not depend on which cells ran before it."""
    alone = sweep([{**BASE, "seed": 1}])["cells"][0]
    second = sweep([{**BASE, "seed": 0}, {**BASE, "seed": 1}])["cells"][1]
    assert canonical_json(alone) == canonical_json(second)


@pytest.mark.slow
def test_parallel_sweep_matches_sequential_exactly():
    """jobs=N reproduces the per-seed sequential results byte for byte."""
    cells = expand_cells(BASE, seeds=[0, 1, 2])
    seq = sweep(cells, jobs=1)
    par = sweep(cells, jobs=2)
    assert canonical_json(seq) == canonical_json(par)
    assert seq["n_cells"] == 3


def test_canonical_json_is_order_insensitive():
    a = canonical_json({"b": 1, "a": [1.5, {"y": 2, "x": 3}]})
    b = canonical_json({"a": [1.5, {"x": 3, "y": 2}], "b": 1})
    assert a == b
    assert " " not in a


def test_sweep_cli_writes_merged_json(tmp_path):
    out = tmp_path / "sweep.json"
    rc = main([
        "--sweep", "--dataset", "finsec", "--policy", "vllm",
        "--config", "stuff/4", "--seeds", "0,1", "--queries", "3",
        "--jobs", "1", "--output", str(out),
    ])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["n_cells"] == 2
    assert [c["params"]["seed"] for c in payload["cells"]] == [0, 1]
    # The file is the canonical serialization (stable for diffing).
    assert out.read_text().strip() == canonical_json(payload)


def test_sweep_cli_rejects_bad_axis():
    assert main(["--sweep", "--seeds", "zero"]) == 2
