"""Property-based tests of engine invariants under random workloads."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm import A40, ClusterSpec, MISTRAL_7B_AWQ
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.request import InferenceRequest, RequestPhase
from repro.util.units import GB

request_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=6_000),   # prompt tokens
        st.integers(min_value=1, max_value=40),      # output tokens
        st.sampled_from(["a", "b", "c"]),            # app id
    ),
    min_size=1,
    max_size=20,
)


def build_engine(policy: str) -> ServingEngine:
    return ServingEngine(
        EngineConfig(
            model=MISTRAL_7B_AWQ,
            cluster=ClusterSpec(A40),
            kv_pool_cap_bytes=1 * GB,  # ~8k tokens: real contention
            policy=policy,
        )
    )


@settings(deadline=None, max_examples=40)
@given(request_specs, st.sampled_from(["fcfs", "app-aware"]))
def test_every_request_completes_exactly_once(specs, policy):
    """Work conservation: all submitted requests finish, once each."""
    engine = build_engine(policy)
    finished: list[int] = []
    requests = []
    for prompt, out, app in specs:
        # Clamp to pool so submission is legal.
        prompt = min(prompt, engine.memory.kv_pool_tokens - out - 1)
        r = InferenceRequest(
            prompt_tokens=max(1, prompt), output_tokens=out,
            arrival_time=0.0, app_id=app,
            on_finish=lambda req, t: finished.append(req.request_id),
        )
        requests.append(engine.submit(r))
    engine.run_until_idle()
    assert sorted(finished) == sorted(r.request_id for r in requests)
    assert all(r.phase is RequestPhase.FINISHED for r in requests)


@settings(deadline=None, max_examples=40)
@given(request_specs, st.sampled_from(["fcfs", "app-aware"]))
def test_blocks_conserved_and_clock_monotone(specs, policy):
    engine = build_engine(policy)
    for prompt, out, app in specs:
        prompt = min(prompt, engine.memory.kv_pool_tokens - out - 1)
        engine.submit(InferenceRequest(
            prompt_tokens=max(1, prompt), output_tokens=out,
            arrival_time=0.0, app_id=app,
        ))
    last_t = 0.0
    while engine.has_work():
        info = engine.step()
        assert info.duration >= 0.0
        assert engine.now >= last_t
        last_t = engine.now
        used = engine.blocks.used_blocks + engine.blocks.free_blocks
        assert used == engine.blocks.n_blocks
    assert engine.blocks.free_blocks == engine.blocks.n_blocks


@settings(deadline=None, max_examples=30)
@given(request_specs)
def test_exact_token_accounting(specs):
    engine = build_engine("fcfs")
    total_prompt = 0
    total_out = 0
    for prompt, out, app in specs:
        prompt = max(1, min(prompt, engine.memory.kv_pool_tokens - out - 1))
        engine.submit(InferenceRequest(
            prompt_tokens=prompt, output_tokens=out,
            arrival_time=0.0, app_id=app,
        ))
        total_prompt += prompt
        total_out += out
    engine.run_until_idle()
    assert engine.stats.prefill_tokens == total_prompt
    # One output token per request is produced by its final prefill chunk.
    n = len(specs)
    assert engine.stats.decode_tokens == total_out - n


@settings(deadline=None, max_examples=20)
@given(request_specs)
def test_fcfs_and_app_aware_complete_same_work(specs):
    """Scheduling policy changes order/latency, never the work done."""
    results = {}
    for policy in ("fcfs", "app-aware"):
        engine = build_engine(policy)
        for prompt, out, app in specs:
            prompt = max(1, min(prompt, engine.memory.kv_pool_tokens - out - 1))
            engine.submit(InferenceRequest(
                prompt_tokens=prompt, output_tokens=out,
                arrival_time=0.0, app_id=app,
            ))
        engine.run_until_idle()
        results[policy] = (engine.stats.prefill_tokens,
                           engine.stats.requests_finished)
    assert results["fcfs"] == results["app-aware"]
