"""Unit tests for synthesis planners and plan footprints."""

import pytest

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.synthesis import (
    MapReduceSynthesizer,
    MapRerankSynthesizer,
    PromptOverheads,
    StuffSynthesizer,
    make_synthesizer,
)
from repro.synthesis.plans import LLMCall, SynthesisPlan

CHUNKS = [400, 420, 380]
QUERY_TOKENS = 30
ANSWER_TOKENS = 20


def build(method, k=3, ilen=100):
    config = RAGConfig(method, k, ilen if method.uses_intermediate_length else 0)
    return make_synthesizer(method).build_plan(
        query_id="q", query_tokens=QUERY_TOKENS, chunk_tokens=CHUNKS,
        answer_tokens=ANSWER_TOKENS, config=config,
    )


class TestStuff:
    def test_single_call(self):
        plan = build(SynthesisMethod.STUFF)
        assert len(plan.calls) == 1
        assert plan.n_stages == 1

    def test_prompt_includes_everything(self):
        plan = build(SynthesisMethod.STUFF)
        call = plan.calls[0]
        overhead = PromptOverheads().wrapper_tokens(3)
        assert call.prompt_tokens == QUERY_TOKENS + sum(CHUNKS) + overhead
        assert call.output_tokens == ANSWER_TOKENS


class TestMapRerank:
    def test_one_call_per_chunk_single_stage(self):
        plan = build(SynthesisMethod.MAP_RERANK)
        assert len(plan.calls) == 3
        assert plan.n_stages == 1

    def test_each_call_sees_one_chunk(self):
        plan = build(SynthesisMethod.MAP_RERANK)
        for call, n in zip(plan.calls, CHUNKS):
            assert call.prompt_tokens == (
                QUERY_TOKENS + n + PromptOverheads().wrapper_tokens(1)
            )


class TestMapReduce:
    def test_mappers_plus_reduce(self):
        plan = build(SynthesisMethod.MAP_REDUCE, ilen=100)
        assert len(plan.calls) == 4
        assert plan.n_stages == 2
        assert len(plan.stage_calls(0)) == 3
        assert len(plan.stage_calls(1)) == 1

    def test_mapper_outputs_are_ilen(self):
        plan = build(SynthesisMethod.MAP_REDUCE, ilen=77)
        for call in plan.stage_calls(0):
            assert call.output_tokens == 77

    def test_reduce_prompt_holds_summaries(self):
        plan = build(SynthesisMethod.MAP_REDUCE, ilen=100)
        reduce_call = plan.stage_calls(1)[0]
        assert reduce_call.prompt_tokens == (
            QUERY_TOKENS + 3 * 100 + PromptOverheads().wrapper_tokens(3)
        )


class TestFootprints:
    def test_stuff_fit_equals_cost(self):
        plan = build(SynthesisMethod.STUFF)
        assert plan.fit_tokens == plan.cost_tokens

    def test_map_reduce_unit_smaller_than_total(self):
        plan = build(SynthesisMethod.MAP_REDUCE)
        assert plan.fit_tokens < plan.cost_tokens

    def test_fig8_property(self):
        """map_reduce's schedulable unit fits where stuff's doesn't."""
        big_chunks = [2000] * 10
        stuff = make_synthesizer(SynthesisMethod.STUFF).build_plan(
            "q", 30, big_chunks, 20, RAGConfig(SynthesisMethod.STUFF, 10))
        mr = make_synthesizer(SynthesisMethod.MAP_REDUCE).build_plan(
            "q", 30, big_chunks, 20,
            RAGConfig(SynthesisMethod.MAP_REDUCE, 10, 100))
        assert mr.fit_tokens < stuff.fit_tokens

    def test_prefill_totals(self):
        plan = build(SynthesisMethod.MAP_REDUCE)
        assert plan.total_prefill_tokens == sum(c.prompt_tokens
                                                for c in plan.calls)
        assert plan.total_output_tokens == sum(c.output_tokens
                                               for c in plan.calls)

    def test_stage_peak(self):
        plan = build(SynthesisMethod.MAP_REDUCE)
        stage0 = sum(c.total_tokens for c in plan.stage_calls(0))
        stage1 = sum(c.total_tokens for c in plan.stage_calls(1))
        assert plan.stage_peak_tokens == max(stage0, stage1)


class TestValidation:
    def test_wrong_method_rejected(self):
        with pytest.raises(ValueError, match="cannot plan"):
            StuffSynthesizer().build_plan(
                "q", 30, CHUNKS, 20,
                RAGConfig(SynthesisMethod.MAP_RERANK, 3))

    def test_too_many_chunks_rejected(self):
        with pytest.raises(ValueError, match="num_chunks"):
            StuffSynthesizer().build_plan(
                "q", 30, CHUNKS, 20, RAGConfig(SynthesisMethod.STUFF, 2))

    def test_fewer_chunks_than_config_allowed(self):
        # The store may run short; planners accept fewer chunks.
        plan = StuffSynthesizer().build_plan(
            "q", 30, CHUNKS[:2], 20, RAGConfig(SynthesisMethod.STUFF, 10))
        assert len(plan.calls) == 1

    def test_empty_chunks_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            StuffSynthesizer().build_plan(
                "q", 30, [], 20, RAGConfig(SynthesisMethod.STUFF, 3))


class TestPlanValidation:
    def test_duplicate_call_ids_rejected(self):
        call = LLMCall("x", 10, 5)
        with pytest.raises(ValueError, match="duplicate"):
            SynthesisPlan(query_id="q", calls=(call, call))

    def test_non_contiguous_stages_rejected(self):
        calls = (LLMCall("a", 10, 5, stage=0), LLMCall("b", 10, 5, stage=2))
        with pytest.raises(ValueError, match="contiguous"):
            SynthesisPlan(query_id="q", calls=calls)

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError):
            SynthesisPlan(query_id="q", calls=())
