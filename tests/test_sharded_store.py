"""Property tests for the K-shard vector store: placement determinism,
gather correctness vs the unsharded store, stable tie-breaking, the
per-shard timing model, resharding, and pluggable indexes."""

import numpy as np
import pytest

from repro.retrieval.chunker import Chunk
from repro.retrieval.embedding import HashedEmbedding
from repro.retrieval.index import (
    INDEX_FACTORIES,
    AutoTrainedIVFIndex,
    FlatL2Index,
)
from repro.retrieval.rerank import ExactReranker, make_reranker
from repro.retrieval.sharded import ShardedVectorStore
from repro.retrieval.store import VectorStore
from repro.util.rng import derive_seed

WORDS = (
    "nvidia apple tesla revenue cost profit quarter guidance asia europe "
    "cloud chips margin growth outlook capital research deal supply demand"
).split()


def make_chunks(n: int, seed: int = 0) -> list[Chunk]:
    rng = np.random.default_rng(seed)
    chunks = []
    for i in range(n):
        text = " ".join(rng.choice(WORDS, size=8))
        chunks.append(Chunk(chunk_id=f"c{i}", doc_id=f"d{i % 5}",
                            text=text, n_tokens=8, position=i))
    return chunks


def build(n_shards: int, chunks=None, **kwargs) -> ShardedVectorStore:
    store = ShardedVectorStore(
        n_shards=n_shards, embedding=HashedEmbedding(dim=64), **kwargs)
    store.add_chunks(chunks if chunks is not None else make_chunks(40))
    return store


class TestPlacement:
    def test_deterministic_across_builds(self):
        a, b = build(4), build(4)
        for chunk in make_chunks(40):
            assert a.shard_of(chunk.chunk_id) == b.shard_of(chunk.chunk_id)

    def test_matches_published_hash_scheme(self):
        store = build(4)
        for cid in ("c0", "c7", "c39"):
            assert store.shard_of(cid) == derive_seed(0, "shard", cid) % 4

    def test_placement_independent_of_insertion_order(self):
        chunks = make_chunks(40)
        a = build(4, chunks=chunks)
        b = ShardedVectorStore(n_shards=4, embedding=HashedEmbedding(dim=64))
        b.add_chunks(list(reversed(chunks)))
        for chunk in chunks:
            assert a.shard_of(chunk.chunk_id) == b.shard_of(chunk.chunk_id)

    def test_placement_seed_changes_layout(self):
        a = build(8)
        b = build(8, placement_seed=1)
        assert [a.shard_of(f"c{i}") for i in range(40)] != \
            [b.shard_of(f"c{i}") for i in range(40)]

    def test_single_shard_holds_everything(self):
        store = build(1)
        assert store.shard_sizes == [40]

    def test_shards_partition_the_corpus(self):
        store = build(4)
        assert sum(store.shard_sizes) == 40
        assert all(size > 0 for size in store.shard_sizes)


class TestGatherCorrectness:
    """Sharded scatter-gather must return the unsharded top-k set."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("k", [1, 5, 12])
    def test_same_topk_set_as_unsharded(self, n_shards, k):
        chunks = make_chunks(40)
        flat = build(1, chunks=chunks)
        sharded = build(n_shards, chunks=chunks)
        for query in ("nvidia revenue asia", "cloud chips outlook",
                      "tesla profit margin guidance"):
            want = {h.chunk.chunk_id for h in flat.search(query, k)}
            got = {h.chunk.chunk_id for h in sharded.search(query, k)}
            assert got == want

    def test_single_shard_bit_identical_to_legacy_store(self):
        chunks = make_chunks(40)
        legacy = VectorStore(embedding=HashedEmbedding(dim=64))
        legacy.add_chunks(chunks)
        sharded = build(1, chunks=chunks)
        for k in (1, 7, 40):
            a = legacy.search("nvidia revenue asia", k)
            b = sharded.search("nvidia revenue asia", k)
            assert [(h.chunk.chunk_id, h.distance, h.rank) for h in a] == \
                [(h.chunk.chunk_id, h.distance, h.rank) for h in b]

    def test_gather_distances_nondecreasing(self):
        store = build(4)
        hits = store.search("supply demand growth", 12)
        distances = [h.distance for h in hits]
        assert distances == sorted(distances)
        assert [h.rank for h in hits] == list(range(len(hits)))

    def test_ties_break_by_insertion_position(self):
        # Identical texts embed identically -> exact distance ties that
        # land on different shards; gather must order them by corpus
        # insertion position, not by shard id.
        chunks = [Chunk(chunk_id=f"t{i}", doc_id="d", text="nvidia cost",
                        n_tokens=2, position=i) for i in range(8)]
        store = build(4, chunks=chunks)
        hits = store.search("nvidia cost", 8)
        assert [h.chunk.chunk_id for h in hits] == [f"t{i}" for i in range(8)]

    def test_k_clamped_and_empty(self):
        store = build(4)
        assert len(store.search("anything", 99)) == 40
        empty = ShardedVectorStore(n_shards=4,
                                   embedding=HashedEmbedding(dim=64))
        assert empty.search("anything", 5) == []
        with pytest.raises(ValueError):
            store.search("x", 0)

    def test_duplicate_chunk_ids_rejected_within_batch(self):
        store = build(2)
        dup = make_chunks(2)[:1] * 2
        with pytest.raises(ValueError, match="duplicate"):
            ShardedVectorStore(embedding=HashedEmbedding(dim=64)) \
                .add_chunks(dup)
        with pytest.raises(ValueError, match="duplicate"):
            store.add_chunks(make_chunks(1))


class TestTimingModel:
    def test_whole_corpus_shard_is_exactly_legacy_constant(self):
        store = build(1, retrieval_latency_s=0.004)
        assert store.shard_hold_seconds(0) == 0.004

    def test_shard_hold_shrinks_with_k_but_keeps_overhead_floor(self):
        chunks = make_chunks(64)
        l_full = 0.1
        holds = {}
        for n_shards in (1, 2, 4, 8):
            store = build(n_shards, chunks=chunks,
                          retrieval_latency_s=l_full)
            holds[n_shards] = max(store.shard_hold_seconds(s)
                                  for s in range(n_shards))
        assert holds[1] == l_full
        assert holds[1] > holds[2] > holds[4] > holds[8]
        # Fixed overhead: even tiny shards cost >= fraction * L.
        assert holds[8] > 0.25 * l_full

    def test_gather_free_at_one_shard_and_for_exact_k(self):
        assert build(1).gather_seconds(12, 12) == 0.0
        store = build(4, gather_per_candidate_s=1e-3)
        assert store.gather_seconds(5, 5) == 0.0
        assert store.gather_seconds(20, 5) == pytest.approx(15e-3)

    def test_exact_sq_distance_matches_index(self):
        store = build(1)
        qvec = store.embed_query("nvidia revenue asia")
        for hit in store.search("nvidia revenue asia", 5):
            assert store.exact_sq_distance(qvec, hit.chunk.chunk_id) == \
                pytest.approx(hit.distance, abs=1e-5)


class TestReshard:
    def test_preserves_corpus_and_results(self):
        chunks = make_chunks(40)
        base = build(1, chunks=chunks)
        for n_shards in (2, 4):
            clone = base.reshard(n_shards)
            assert len(clone) == len(base)
            assert clone.get("c3").text == base.get("c3").text
            want = {h.chunk.chunk_id for h in base.search("asia cloud", 6)}
            got = {h.chunk.chunk_id for h in clone.search("asia cloud", 6)}
            assert got == want

    def test_inherits_and_overrides_timing(self):
        base = build(1, retrieval_latency_s=0.5,
                     gather_per_candidate_s=3e-3)
        clone = base.reshard(4)
        assert clone.retrieval_latency_s == 0.5
        assert clone.gather_per_candidate_s == 3e-3
        faster = base.reshard(4, retrieval_latency_s=0.1)
        assert faster.retrieval_latency_s == 0.1

    def test_keeps_index_label(self):
        base = build(1)
        assert base.reshard(2).index_label == "flat"
        assert base.reshard(2, index_factory="ivf").index_label == "ivf"


class TestPluggableIndex:
    def test_named_factories(self):
        assert set(INDEX_FACTORIES) == {"flat", "ivf"}
        flat = build(2, index_factory="flat")
        assert isinstance(flat._shards[0].index, FlatL2Index)
        ivf = build(2, index_factory="ivf")
        assert isinstance(ivf._shards[0].index, AutoTrainedIVFIndex)
        assert ivf._shards[0].index.is_trained

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown index factory"):
            ShardedVectorStore(index_factory="hnsw")

    def test_ivf_auto_train_clamps_nlist_to_tiny_shard(self):
        index = AutoTrainedIVFIndex(8, nlist=16, nprobe=4)
        index.add(np.eye(8, dtype=np.float32)[:3])
        assert index.is_trained
        assert index.nlist <= 3
        distances, indices = index.search(np.eye(8, dtype=np.float32)[:1], 2)
        assert indices[0][0] >= 0

    def test_ivf_store_searches(self):
        store = build(4, index_factory="ivf")
        hits = store.search("nvidia revenue asia", 5)
        assert hits
        assert [h.rank for h in hits] == list(range(len(hits)))

    def test_callable_factory(self):
        store = build(2, index_factory=lambda dim: FlatL2Index(dim))
        assert len(store.search("asia", 3)) == 3

    def test_index_accessor_single_shard_only(self):
        assert isinstance(build(1).index, FlatL2Index)
        with pytest.raises(ValueError, match="4 shards"):
            build(4).index


class TestExactReranker:
    def test_reranks_overfetched_pool_by_true_distance(self):
        # On an approximate index the reranker's exact re-scoring must
        # order the over-fetched pool by true distance and pick its
        # best k — which equals the flat top-k whenever the pool
        # contains it.
        chunks = make_chunks(60)
        flat = build(1, chunks=chunks)
        ivf = build(4, chunks=chunks, index_factory="ivf")
        reranker = ExactReranker(fetch_multiplier=4)
        qvec = ivf.embed_query("nvidia revenue asia")
        pool = ivf.search("nvidia revenue asia", reranker.fetch_k(5))
        top = reranker.rerank(ivf, qvec, pool, 5)
        assert len(top) == 5
        distances = [h.distance for h in top]
        assert distances == sorted(distances)
        pool_ids = {h.chunk.chunk_id for h in pool}
        assert {h.chunk.chunk_id for h in top} <= pool_ids
        flat_ids = {h.chunk.chunk_id
                    for h in flat.search("nvidia revenue asia", 5)}
        if flat_ids <= pool_ids:
            assert {h.chunk.chunk_id for h in top} == flat_ids

    def test_noop_on_exact_candidates(self):
        store = build(2)
        qvec = store.embed_query("cloud chips outlook")
        pool = store.search("cloud chips outlook", 12)
        reranked = ExactReranker().rerank(store, qvec, pool, 4)
        assert [h.chunk.chunk_id for h in reranked] == \
            [h.chunk.chunk_id for h in pool[:4]]

    def test_make_reranker(self):
        assert make_reranker(None) is None
        assert isinstance(make_reranker("exact"), ExactReranker)
        custom = ExactReranker(per_candidate_seconds=1e-3)
        assert make_reranker(custom) is custom
        with pytest.raises(ValueError, match="unknown reranker"):
            make_reranker("cross-encoder")

    def test_cost_model(self):
        reranker = ExactReranker(per_candidate_seconds=2e-4,
                                 fetch_multiplier=3)
        assert reranker.fetch_k(5) == 15
        assert reranker.hold_seconds(15) == pytest.approx(3e-3)
        with pytest.raises(ValueError):
            ExactReranker(per_candidate_seconds=-1.0)
        with pytest.raises(ValueError):
            ExactReranker(fetch_multiplier=0)
