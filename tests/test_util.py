"""Unit tests for util: RNG streams, unit formatting, validation."""

import numpy as np
import pytest

from repro.util import (
    GB,
    MB,
    RngStreams,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    derive_seed,
    format_bytes,
    format_duration,
    format_tokens,
    stream,
)
from repro.util.validation import check_shard_concurrency, check_shard_count


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")

    def test_different_names_differ(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_different_roots_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_name_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_int_parts_accepted(self):
        assert derive_seed(1, 5, "x") == derive_seed(1, 5, "x")


class TestRngStreams:
    def test_cached_stream_is_same_object(self):
        rngs = RngStreams(3)
        assert rngs.get("x") is rngs.get("x")

    def test_fresh_streams_restart(self):
        rngs = RngStreams(3)
        a = rngs.fresh("x").random(5)
        b = rngs.fresh("x").random(5)
        assert np.allclose(a, b)

    def test_named_streams_are_independent(self):
        rngs = RngStreams(3)
        a = rngs.fresh("x").random(100)
        b = rngs.fresh("y").random(100)
        assert not np.allclose(a, b)

    def test_child_derives_new_root(self):
        rngs = RngStreams(3)
        child = rngs.child("sub")
        assert child.root_seed != rngs.root_seed
        assert child.root_seed == RngStreams(3).child("sub").root_seed

    def test_module_level_stream_matches(self):
        assert np.allclose(stream(5, "q").random(3),
                           RngStreams(5).fresh("q").random(3))


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(10) == "10 B"
        assert format_bytes(2 * MB) == "2.00 MiB"
        assert format_bytes(48 * GB) == "48.00 GiB"

    def test_format_duration_units(self):
        assert format_duration(5e-7).endswith("us")
        assert format_duration(0.05).endswith("ms")
        assert format_duration(2.0).endswith("s")
        assert format_duration(300).endswith("min")

    def test_format_duration_negative(self):
        assert format_duration(-0.5).startswith("-")

    def test_format_tokens(self):
        assert format_tokens(500) == "500 tok"
        assert format_tokens(12_800) == "12.8K tok"
        assert format_tokens(3_000_000) == "3.0M tok"


class TestValidation:
    def test_check_positive_passes_and_returns(self):
        assert check_positive("x", 2.5) == 2.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_probability(self):
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.2)

    def test_check_in_range(self):
        assert check_in_range("v", 5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("v", 11, 0, 10)


class TestShardValidation:
    def test_shard_count_accepts_integral(self):
        assert check_shard_count("k", 4) == 4
        assert check_shard_count("k", 4.0) == 4

    def test_shard_count_rejects_bad_values(self):
        for bad in (0, -1, 1.5, "four", None):
            with pytest.raises(ValueError, match="k must be an integer"):
                check_shard_count("k", bad)

    def test_shard_concurrency_none_passthrough(self):
        assert check_shard_concurrency("sc", None, 4) is None

    def test_shard_concurrency_broadcasts_int(self):
        assert check_shard_concurrency("sc", 2, 3) == [2, 2, 2]

    def test_shard_concurrency_list_with_unbounded_entries(self):
        assert check_shard_concurrency("sc", [1, None, 3], 3) == [1, None, 3]

    def test_shard_concurrency_length_mismatch_names_counts(self):
        with pytest.raises(ValueError,
                           match="2 entries but retrieval_shards is 4"):
            check_shard_concurrency("sc", [1, 2], 4)

    def test_shard_concurrency_bad_entry_names_index(self):
        with pytest.raises(ValueError, match=r"sc\[1\] must be > 0"):
            check_shard_concurrency("sc", [1, -2], 2)

    def test_shard_concurrency_rejects_nonpositive_scalar(self):
        with pytest.raises(ValueError, match="sc must be > 0"):
            check_shard_concurrency("sc", 0, 2)
