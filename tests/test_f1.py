"""Unit + property tests for token-level F1."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.f1 import precision_recall, token_f1

tokens = st.lists(st.sampled_from("abcdefgh"), max_size=30)


class TestBasics:
    def test_perfect_match(self):
        assert token_f1(["a", "b"], ["a", "b"]) == 1.0

    def test_order_irrelevant(self):
        assert token_f1(["b", "a"], ["a", "b"]) == 1.0

    def test_disjoint_is_zero(self):
        assert token_f1(["x"], ["y"]) == 0.0

    def test_empty_prediction(self):
        assert token_f1([], ["a"]) == 0.0

    def test_empty_reference(self):
        assert token_f1(["a"], []) == 0.0

    def test_multiset_counting(self):
        # "a" appears twice in prediction but once in reference:
        # only one counts as overlap.
        p, r = precision_recall(["a", "a"], ["a"])
        assert p == 0.5
        assert r == 1.0

    def test_known_value(self):
        assert token_f1(["the", "eiffel", "tower"],
                        ["eiffel", "tower"]) == pytest.approx(0.8)


class TestProperties:
    @given(tokens, tokens)
    def test_bounded(self, a, b):
        assert 0.0 <= token_f1(a, b) <= 1.0

    @given(tokens)
    def test_self_match_is_one(self, a):
        if a:
            assert token_f1(a, a) == 1.0

    @given(tokens, tokens)
    def test_symmetry(self, a, b):
        assert token_f1(a, b) == pytest.approx(token_f1(b, a))

    @given(tokens, tokens)
    def test_f1_is_harmonic_mean(self, a, b):
        p, r = precision_recall(a, b)
        f1 = token_f1(a, b)
        if p + r == 0:
            assert f1 == 0.0
        else:
            assert f1 == pytest.approx(2 * p * r / (p + r))

    @given(tokens)
    def test_adding_noise_reduces_precision(self, a):
        if not a:
            return
        noisy = list(a) + ["≠never1", "≠never2"]
        assert token_f1(noisy, a) < token_f1(a, a)
