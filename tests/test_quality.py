"""Unit + property tests for the behavioural quality model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.knobs import SynthesisMethod
from repro.llm.quality import (
    ChunkView,
    FactView,
    QualityModel,
    QualityParams,
    SynthesisContext,
)

model = QualityModel(QualityParams())


def fact(fid: str, n_tokens: int = 3, verbosity: float = 20.0) -> FactView:
    return FactView(fact_id=fid,
                    value_tokens=tuple(f"{fid}v{i}" for i in range(n_tokens)),
                    verbosity=verbosity)


def ctx(facts_per_chunk, required, complexity_high=False,
        joint=True, chunk_tokens=500, qid="q") -> SynthesisContext:
    chunks = tuple(
        ChunkView(chunk_id=f"c{i}", n_tokens=chunk_tokens, facts=tuple(fs))
        for i, fs in enumerate(facts_per_chunk)
    )
    return SynthesisContext(
        query_id=qid, complexity_high=complexity_high,
        joint_reasoning=joint, required_facts=tuple(required),
        chunks=chunks, answer_template_tokens=("the", "answer", "is"),
    )


class TestLostInTheMiddle:
    def test_short_context_no_penalty(self):
        assert model.lim_factor(1000, 0.5) == 1.0

    def test_middle_worse_than_edges(self):
        long = 20_000
        assert model.lim_factor(long, 0.5) < model.lim_factor(long, 0.05)
        assert model.lim_factor(long, 0.5) < model.lim_factor(long, 0.95)

    def test_penalty_grows_with_length(self):
        assert model.lim_factor(30_000, 0.5) < model.lim_factor(5_000, 0.5)

    def test_saturates(self):
        assert model.lim_factor(10**6, 0.5) >= 1.0 - model.params.lim_max_depth

    @given(st.integers(min_value=0, max_value=100_000),
           st.floats(min_value=0, max_value=1))
    def test_bounded(self, tokens, pos):
        assert 0.0 < model.lim_factor(tokens, pos) <= 1.0


class TestMapRerank:
    def test_answers_from_single_best_chunk(self):
        f1, f2 = fact("f1"), fact("f2")
        # f1 and f2 in different chunks: only one can be recovered.
        c = ctx([[f1], [f2]], [f1, f2])
        probs = model.fact_recovery_probs(c, SynthesisMethod.MAP_RERANK)
        assert sorted(probs.values())[0] == 0.0
        assert sorted(probs.values())[1] > 0.5

    def test_colocated_facts_both_recoverable(self):
        f1, f2 = fact("f1"), fact("f2")
        c = ctx([[f1, f2]], [f1, f2])
        probs = model.fact_recovery_probs(c, SynthesisMethod.MAP_RERANK)
        assert all(p > 0.5 for p in probs.values())

    def test_complexity_penalty(self):
        f1 = fact("f1")
        low = ctx([[f1]], [f1], complexity_high=False)
        high = ctx([[f1]], [f1], complexity_high=True)
        p_low = model.fact_recovery_probs(low, SynthesisMethod.MAP_RERANK)["f1"]
        p_high = model.fact_recovery_probs(high, SynthesisMethod.MAP_RERANK)["f1"]
        assert p_high < p_low


class TestStuff:
    def test_all_retrieved_facts_recoverable(self):
        f1, f2 = fact("f1"), fact("f2")
        c = ctx([[f1], [f2]], [f1, f2])
        probs = model.fact_recovery_probs(c, SynthesisMethod.STUFF)
        assert all(p > 0.5 for p in probs.values())

    def test_unretrieved_fact_is_zero(self):
        f1, f2 = fact("f1"), fact("f2")
        c = ctx([[f1]], [f1, f2])  # f2's chunk not retrieved
        probs = model.fact_recovery_probs(c, SynthesisMethod.STUFF)
        assert probs["f2"] == 0.0

    def test_middle_chunk_recovers_worse_in_long_context(self):
        facts = [fact(f"f{i}") for i in range(9)]
        c = ctx([[f] for f in facts], facts, chunk_tokens=3_000)
        probs = model.fact_recovery_probs(c, SynthesisMethod.STUFF)
        assert probs["f4"] < probs["f0"]  # middle vs first


class TestMapReduce:
    def test_ample_budget_recovers(self):
        f1 = fact("f1", verbosity=30)
        c = ctx([[f1]], [f1])
        probs = model.fact_recovery_probs(c, SynthesisMethod.MAP_REDUCE,
                                          intermediate_length=120)
        assert probs["f1"] > 0.7

    def test_starved_budget_loses_facts(self):
        f1 = fact("f1", verbosity=80)
        c = ctx([[f1]], [f1])
        starved = model.fact_recovery_probs(c, SynthesisMethod.MAP_REDUCE,
                                            intermediate_length=20)
        ample = model.fact_recovery_probs(c, SynthesisMethod.MAP_REDUCE,
                                          intermediate_length=200)
        assert starved["f1"] < 0.3 < ample["f1"]

    def test_budget_monotonicity(self):
        f1 = fact("f1", verbosity=60)
        c = ctx([[f1]], [f1])
        last = 0.0
        for ilen in (10, 40, 80, 160, 300):
            p = model.fact_recovery_probs(
                c, SynthesisMethod.MAP_REDUCE, intermediate_length=ilen
            )["f1"]
            assert p >= last
            last = p

    def test_competing_facts_share_budget(self):
        f1, f2 = fact("f1", verbosity=50), fact("f2", verbosity=50)
        together = ctx([[f1, f2]], [f1, f2])
        alone = ctx([[f1]], [f1])
        p_together = model.fact_recovery_probs(
            together, SynthesisMethod.MAP_REDUCE, intermediate_length=80
        )["f1"]
        p_alone = model.fact_recovery_probs(
            alone, SynthesisMethod.MAP_REDUCE, intermediate_length=80
        )["f1"]
        assert p_together < p_alone

    def test_high_complexity_prefers_map_reduce_over_stuff(self):
        facts = [fact(f"f{i}") for i in range(4)]
        c = ctx([[f] for f in facts], facts, complexity_high=True,
                chunk_tokens=2_000)
        stuff_f1 = model.expected_f1(c, SynthesisMethod.STUFF)
        mr_f1 = model.expected_f1(c, SynthesisMethod.MAP_REDUCE,
                                  intermediate_length=150)
        assert mr_f1 > stuff_f1

    def test_requires_positive_ilen(self):
        f1 = fact("f1")
        c = ctx([[f1]], [f1])
        with pytest.raises(ValueError):
            model.fact_recovery_probs(c, SynthesisMethod.MAP_REDUCE, 0)


class TestNoiseAndExpectedF1:
    def test_irrelevant_fraction(self):
        f1 = fact("f1")
        c = ctx([[f1], [], []], [f1])
        assert c.irrelevant_fraction == pytest.approx(2 / 3)

    def test_noise_grows_with_irrelevant_chunks(self):
        f1 = fact("f1")
        lean = ctx([[f1]], [f1])
        bloated = ctx([[f1], [], [], [], []], [f1])
        assert (model.expected_noise_tokens(bloated, SynthesisMethod.STUFF)
                > model.expected_noise_tokens(lean, SynthesisMethod.STUFF))

    def test_over_retrieval_hurts_expected_f1(self):
        f1 = fact("f1")
        lean = ctx([[f1]], [f1])
        bloated = ctx([[f1]] + [[]] * 30, [f1], chunk_tokens=800)
        assert (model.expected_f1(bloated, SynthesisMethod.STUFF)
                < model.expected_f1(lean, SynthesisMethod.STUFF))

    def test_expected_f1_bounded(self):
        f1 = fact("f1")
        c = ctx([[f1]], [f1])
        for method in SynthesisMethod:
            v = model.expected_f1(c, method, intermediate_length=100)
            assert 0.0 <= v <= 1.0

    @settings(deadline=None, max_examples=40)
    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=10))
    def test_more_coverage_never_hurts_recall_side(self, n_required, n_noise):
        """Retrieving the chunks that contain required facts dominates
        not retrieving them (with noise chunks held constant)."""
        facts = [fact(f"f{i}") for i in range(n_required)]
        full = ctx([[f] for f in facts] + [[]] * n_noise, facts)
        partial = ctx([[facts[0]]] + [[]] * n_noise, facts)
        f_full = model.expected_f1(full, SynthesisMethod.STUFF)
        f_partial = model.expected_f1(partial, SynthesisMethod.STUFF)
        if n_required > 1:
            assert f_full > f_partial
