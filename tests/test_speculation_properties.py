"""Property tests: hedging cancellation never leaks.

After any randomized schedule with speculation enabled — arbitrary
arrival rates, SLOs, hedge timers, replica speeds, routers, shard
counts, finite resource pools — the simulation must drain clean:

* every cancelled kernel event is a tombstone (never dispatched; the
  drained loop satisfies ``n_scheduled == n_dispatched + n_cancelled``
  and any entries still in the heap are tombstoned),
* no :class:`~repro.sim.Resource` has a stranded holder
  (``in_service == 0``, empty queue) — cancelled leases released
  their slots,
* KV occupancy returns to zero on every replica (cancelled requests
  freed their block reservations),
* every query is recorded exactly once (first-completion-wins never
  drops or double-counts a query).
"""

from __future__ import annotations

import pytest

from repro.baselines import FixedConfigPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data.workload import poisson_arrivals
from repro.evaluation.pipeline import QueryPipeline
from repro.llm.generation import SimulatedGenerator
from repro.llm.quality import QualityModel
from repro.serving import ClusterEngine, EngineConfig, make_speculation
from repro.llm import A40, ClusterSpec, MISTRAL_7B_AWQ
from repro.util.rng import RngStreams
from repro.util.units import GB

N_SCHEDULES = 24
N_QUERIES = 22

pytestmark = pytest.mark.tier2


def build_pipeline(bundle, seed: int):
    """One randomized hedging scenario drawn from a seeded stream."""
    rng = RngStreams(seed).get("spec", "prop")
    n_replicas = int(rng.integers(2, 4))
    speeds = [float(rng.choice([0.5, 0.75, 1.0, 1.5]))
              for _ in range(n_replicas)]
    router = str(rng.choice(["round-robin", "least-outstanding",
                             "least-kv-load", "power-of-two"]))
    config = EngineConfig(
        model=MISTRAL_7B_AWQ,
        cluster=ClusterSpec(A40),
        # Tight pool: admission stalls make cancellation windows wide.
        kv_pool_cap_bytes=float(rng.choice([1, 2, 8])) * GB,
    )
    engine = ClusterEngine(config, n_replicas=n_replicas, router=router,
                           seed=seed, replica_speeds=speeds)
    slo = float(rng.uniform(1.0, 8.0))
    if rng.random() < 0.5:
        speculation = make_speculation(
            "hedge-after-delay",
            hedge_delay=float(rng.uniform(0.2, 4.0)))
    else:
        speculation = make_speculation("deadline-risk", slo_seconds=slo)
    n_shards = int(rng.choice([1, 2, 4]))
    store = bundle.store
    if n_shards > 1:
        store = store.reshard(n_shards)
    shard_concurrency = (int(rng.choice([1, 2]))
                         if rng.random() < 0.5 else None)
    pipeline = QueryPipeline(
        bundle=bundle,
        policy=FixedConfigPolicy(
            RAGConfig(SynthesisMethod.STUFF, int(rng.integers(4, 10)))),
        engine=engine,
        generator=SimulatedGenerator(
            quality=QualityModel(bundle.quality_params), root_seed=seed),
        profiler_concurrency=(int(rng.choice([1, 3]))
                              if rng.random() < 0.3 else None),
        store=store,
        shard_concurrency=shard_concurrency,
        speculation=speculation,
        slo_seconds=slo,
    )
    rate = float(rng.uniform(1.0, 6.0))
    arrivals = poisson_arrivals(bundle.queries[:N_QUERIES], rate, seed=seed)
    return pipeline, arrivals


def assert_drained_clean(pipeline) -> None:
    loop = pipeline.loop
    assert len(loop) == 0, "live events left after drain"
    # Every cancelled event died as a tombstone: the dispatch ledger
    # balances exactly, and whatever the queue still holds is
    # tombstoned (lazy deletion never let it fire).
    assert loop.n_scheduled == loop.n_dispatched + loop.n_cancelled
    for entry in loop.queued_entries():
        assert not loop.is_pending(entry[3])

    resources = [pipeline.profiler, *pipeline.shard_resources]
    if pipeline.rerank_resource is not None:
        resources.append(pipeline.rerank_resource)
    for resource in resources:
        assert resource.in_service == 0, \
            f"{resource.name} has a stranded holder"
        assert resource.queue_len == 0, f"{resource.name} queue not empty"

    engine = pipeline.engine
    assert not engine.has_work()
    for replica in engine.replicas:
        assert len(replica.waiting) == 0
        assert len(replica.running) == 0
        assert replica.blocks.used_blocks == 0, "KV occupancy not zero"
        assert replica.blocks.n_sequences == 0


@pytest.mark.parametrize("seed", range(N_SCHEDULES))
def test_random_hedged_schedule_drains_clean(seed, finsec_bundle):
    pipeline, arrivals = build_pipeline(finsec_bundle, seed)
    pipeline.run(arrivals)
    assert_drained_clean(pipeline)
    records = pipeline.records
    assert len(records) == N_QUERIES
    assert len({r.query_id for r in records}) == N_QUERIES
    assert pipeline.n_hedges_armed == sum(1 for r in records if r.hedged)
    # Wasted work only ever comes from hedged queries, and the ledger
    # attribution mirrors the per-record sum.
    for r in records:
        if not r.hedged:
            assert r.wasted_prefill_tokens == 0
            assert r.wasted_decode_tokens == 0
            assert r.speculation_seconds == 0.0
    assert pipeline.speculation_gpu_seconds == pytest.approx(
        sum(r.speculation_seconds for r in records))


def test_closed_loop_hedging_drains_clean(finsec_bundle):
    """Hedging composes with closed-loop refill (completion events
    schedule new arrivals from inside winning-lane callbacks)."""
    from repro.data.workload import sequential_arrivals

    pipeline, _ = build_pipeline(finsec_bundle, seed=7)
    arrivals = sequential_arrivals(finsec_bundle.queries[:N_QUERIES])
    pipeline.run(arrivals, closed_loop_clients=4)
    assert_drained_clean(pipeline)
    assert len(pipeline.records) == N_QUERIES


def build_autoscaled_pipeline(bundle, seed: int):
    """A hedging scenario under an elastic fleet: replicas provision
    and retire mid-schedule while the speculation policy is arming
    hedges, so retirement must never strand a resource holder, a KV
    reservation, or an in-flight hedge lane."""
    from repro.workload import (
        Autoscaler,
        ForecastPolicy,
        ReactivePolicy,
        diurnal_workload,
    )

    rng = RngStreams(seed).get("autoscale", "prop")
    config = EngineConfig(
        model=MISTRAL_7B_AWQ,
        cluster=ClusterSpec(A40),
        kv_pool_cap_bytes=float(rng.choice([1, 2])) * GB,
    )
    router = str(rng.choice(["round-robin", "least-outstanding",
                             "power-of-two"]))
    engine = ClusterEngine(config, n_replicas=2, router=router, seed=seed)
    slo = float(rng.uniform(2.0, 8.0))
    if rng.random() < 0.5:
        speculation = make_speculation(
            "hedge-after-delay", hedge_delay=float(rng.uniform(0.3, 3.0)))
    else:
        speculation = make_speculation("deadline-risk", slo_seconds=slo)
    pipeline = QueryPipeline(
        bundle=bundle,
        policy=FixedConfigPolicy(
            RAGConfig(SynthesisMethod.STUFF, int(rng.integers(4, 10)))),
        engine=engine,
        generator=SimulatedGenerator(
            quality=QualityModel(bundle.quality_params), root_seed=seed),
        speculation=speculation,
        slo_seconds=slo,
    )
    trace = diurnal_workload(
        n_periods=6, period_s=float(rng.uniform(8.0, 14.0)),
        base_qps=0.4, peak_qps=float(rng.uniform(2.0, 4.0)), seed=seed)
    if rng.random() < 0.5:
        policy = ReactivePolicy()
    else:
        policy = ForecastPolicy()
    autoscaler = Autoscaler(
        policy, scale_min=1, scale_max=4,
        interval_s=float(rng.uniform(2.0, 5.0)),
        provision_delay_s=float(rng.uniform(1.0, 6.0)),
        workload=trace,
    )
    arrivals = trace.materialize(bundle.queries[:N_QUERIES], seed=seed)
    return pipeline, autoscaler, arrivals


def assert_retirement_clean(pipeline) -> None:
    """Replica retirement stranded nothing: retired replicas are empty
    and unpinned, and the hedge bookkeeping fully unwound."""
    engine = pipeline.engine
    for rid, replica in enumerate(engine.replicas):
        if engine.retired_at[rid] is not None:
            assert replica.outstanding == 0, \
                f"retired replica {rid} still holds work"
            assert rid not in engine._pins.values(), \
                f"retired replica {rid} still pinned"
    assert not engine._assignments, "request->replica map not unwound"
    # In-flight hedge lanes are covered by assert_drained_clean: a
    # stranded hedge would show up as a live loop event, a nonzero
    # replica outstanding, or an unbalanced cancellation ledger.


@pytest.mark.parametrize("seed", range(12))
def test_autoscaled_hedged_schedule_drains_clean(seed, finsec_bundle):
    pipeline, autoscaler, arrivals = build_autoscaled_pipeline(
        finsec_bundle, seed)
    pipeline.autoscaler = autoscaler
    pipeline.run(arrivals)
    assert_drained_clean(pipeline)
    assert_retirement_clean(pipeline)
    assert len(pipeline.records) == len(arrivals)
    assert len({r.query_id for r in pipeline.records}) == len(arrivals)
    # Fleet conservation: the run started with 2 replicas and wound
    # down to scale_min once the horizon passed and the work drained.
    actions = [e.action for e in autoscaler.events]
    assert 2 + actions.count("add") - actions.count("retire") == 1
    assert pipeline.engine.n_active == 1  # scale_min
