"""End-to-end sanity: METIS' qualitative claims on small workloads."""

import pytest

from repro.baselines import FixedConfigPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.experiments.common import (
    make_adaptive_rag,
    make_metis,
    run_policy,
)


class TestHeadlineShape:
    """Small-scale versions of the paper's Fig 10 relations."""

    def test_metis_beats_cheap_fixed_on_quality(self, finsec_bundle):
        metis = run_policy(finsec_bundle, make_metis(finsec_bundle),
                           rate_qps=1.2)
        cheap = run_policy(
            finsec_bundle,
            FixedConfigPolicy(RAGConfig(SynthesisMethod.STUFF, 3)),
            rate_qps=1.2,
        )
        assert metis.mean_f1 > cheap.mean_f1

    def test_metis_faster_than_adaptive_rag_at_similar_f1(self, qmsum_bundle):
        metis = run_policy(qmsum_bundle, make_metis(qmsum_bundle),
                           rate_qps=1.0)
        adaptive = run_policy(qmsum_bundle, make_adaptive_rag(qmsum_bundle),
                              rate_qps=1.0)
        assert metis.mean_delay < adaptive.mean_delay
        assert metis.mean_f1 >= adaptive.mean_f1 - 0.05

    def test_metis_adapts_configs_per_query(self, musique_bundle):
        metis = run_policy(musique_bundle, make_metis(musique_bundle),
                           rate_qps=1.5)
        distinct = {r.config for r in metis.records}
        assert len(distinct) > 3

    def test_per_query_chunks_track_pieces(self, musique_bundle):
        metis = run_policy(musique_bundle, make_metis(musique_bundle),
                           rate_qps=1.0)
        by_id = {q.query_id: q for q in musique_bundle.queries}
        # Exclude low-confidence queries: those use the recent-spaces
        # fallback whose ranges do not reflect this query's pieces.
        confident = [r for r in metis.records if not r.used_recent_spaces]
        small = [r.config.num_chunks for r in confident
                 if by_id[r.query_id].truth.pieces_of_information <= 2]
        large = [r.config.num_chunks for r in confident
                 if by_id[r.query_id].truth.pieces_of_information >= 3]
        if len(small) >= 2 and len(large) >= 2:
            assert (sum(small) / len(small)) < (sum(large) / len(large))

    def test_profiler_overhead_fraction_small_on_long_queries(
            self, qmsum_bundle):
        metis = run_policy(qmsum_bundle, make_metis(qmsum_bundle),
                           rate_qps=1.0)
        assert metis.mean_profiler_fraction < 0.3

    def test_methods_follow_algorithm1(self, finsec_bundle):
        metis = run_policy(finsec_bundle, make_metis(finsec_bundle),
                           rate_qps=1.0)
        by_id = {q.query_id: q for q in finsec_bundle.queries}
        for record in metis.records:
            truth = by_id[record.query_id].truth
            method = record.config.synthesis_method
            if record.fell_back:
                continue
            # A good profile maps no-joint queries to map_rerank; noise
            # makes this probabilistic, so only assert the dominant
            # direction: joint queries never get map_rerank unless the
            # profile was wrong.
            if method is SynthesisMethod.MAP_RERANK:
                continue  # plausible under profile noise either way
            if truth.joint_reasoning:
                assert method in (SynthesisMethod.STUFF,
                                  SynthesisMethod.MAP_REDUCE)


class TestSequentialMode:
    def test_low_load_picks_expensive_configs(self, musique_bundle):
        metis = run_policy(musique_bundle, make_metis(musique_bundle),
                           n_queries=10, sequential=True)
        by_id = {q.query_id: q for q in musique_bundle.queries}
        for record in metis.records:
            if record.fell_back:
                continue
            pieces = by_id[record.query_id].truth.pieces_of_information
            # Under no contention, best-fit picks the top of the range.
            assert record.config.num_chunks >= min(35, 2 * pieces)
