"""Unit + property tests for the FAISS-style L2 indexes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.retrieval.index import FlatL2Index, IVFFlatIndex


def brute_force_knn(data: np.ndarray, q: np.ndarray, k: int):
    d2 = ((data - q) ** 2).sum(axis=1)
    order = np.argsort(d2, kind="stable")[:k]
    return d2[order], order


class TestFlatL2:
    def test_empty_index_returns_padding(self):
        index = FlatL2Index(dim=4)
        d, i = index.search(np.zeros(4, dtype=np.float32), 3)
        assert np.all(np.isinf(d))
        assert np.all(i == -1)

    def test_exact_nearest_neighbour(self):
        index = FlatL2Index(dim=2)
        index.add(np.array([[0, 0], [1, 0], [5, 5]], dtype=np.float32))
        d, i = index.search(np.array([[0.9, 0.1]], dtype=np.float32), 1)
        assert i[0, 0] == 1

    def test_padding_when_k_exceeds_ntotal(self):
        index = FlatL2Index(dim=2)
        index.add(np.array([[0, 0]], dtype=np.float32))
        d, i = index.search(np.zeros((1, 2), dtype=np.float32), 5)
        assert i[0, 0] == 0
        assert list(i[0, 1:]) == [-1] * 4
        assert np.all(np.isinf(d[0, 1:]))

    def test_reconstruct(self):
        index = FlatL2Index(dim=3)
        v = np.array([[1, 2, 3]], dtype=np.float32)
        index.add(v)
        assert np.allclose(index.reconstruct(0), v[0])

    def test_shape_validation(self):
        index = FlatL2Index(dim=4)
        with pytest.raises(ValueError, match="shape"):
            index.add(np.zeros((2, 3), dtype=np.float32))

    def test_rejects_bad_k(self):
        index = FlatL2Index(dim=2)
        with pytest.raises(ValueError):
            index.search(np.zeros((1, 2), dtype=np.float32), 0)

    @settings(deadline=None, max_examples=30)
    @given(
        arrays(np.float32, (12, 8),
               elements=st.floats(-5, 5, width=32)),
        arrays(np.float32, (2, 8),
               elements=st.floats(-5, 5, width=32)),
        st.integers(min_value=1, max_value=12),
    )
    def test_matches_brute_force(self, data, queries, k):
        index = FlatL2Index(dim=8)
        index.add(data)
        d, i = index.search(queries, k)
        for row in range(queries.shape[0]):
            ref_d, _ = brute_force_knn(data, queries[row], k)
            # Compare distances (indices may tie-break differently).
            assert np.allclose(np.sort(d[row]), np.sort(ref_d), atol=1e-3)


class TestIVFFlat:
    def _data(self, n=200, dim=8, seed=0):
        rng = np.random.default_rng(seed)
        return rng.normal(size=(n, dim)).astype(np.float32)

    def test_requires_training(self):
        index = IVFFlatIndex(dim=8)
        with pytest.raises(RuntimeError, match="trained"):
            index.add(self._data(20))
        with pytest.raises(RuntimeError, match="trained"):
            index.search(np.zeros((1, 8), dtype=np.float32), 1)

    def test_train_needs_enough_vectors(self):
        index = IVFFlatIndex(dim=8, nlist=16)
        with pytest.raises(ValueError, match="nlist"):
            index.train(self._data(8))

    def test_recall_against_exact(self):
        data = self._data(300)
        ivf = IVFFlatIndex(dim=8, nlist=8, nprobe=4)
        ivf.train(data)
        ivf.add(data)
        flat = FlatL2Index(dim=8)
        flat.add(data)
        queries = self._data(20, seed=1)
        _, exact = flat.search(queries, 5)
        _, approx = ivf.search(queries, 5)
        recall = np.mean([
            len(set(exact[r]) & set(approx[r])) / 5
            for r in range(queries.shape[0])
        ])
        assert recall >= 0.6  # nprobe=4 of 8 cells

    def test_full_probe_is_exact(self):
        data = self._data(100)
        ivf = IVFFlatIndex(dim=8, nlist=4, nprobe=4)
        ivf.train(data)
        ivf.add(data)
        flat = FlatL2Index(dim=8)
        flat.add(data)
        q = self._data(5, seed=2)
        d_ivf, i_ivf = ivf.search(q, 3)
        d_flat, i_flat = flat.search(q, 3)
        assert np.allclose(np.sort(d_ivf), np.sort(d_flat), atol=1e-3)

    def test_nprobe_validation(self):
        with pytest.raises(ValueError):
            IVFFlatIndex(dim=8, nlist=4, nprobe=5)
