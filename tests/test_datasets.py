"""Unit tests for synthetic dataset generation."""

import numpy as np
import pytest

from repro.data import DATASET_NAMES, build_dataset, get_spec
from repro.data.facts import Fact


class TestRegistry:
    def test_four_datasets(self):
        assert set(DATASET_NAMES) == {"squad", "musique", "finsec", "qmsum"}

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="musique"):
            get_spec("hotpot")

    def test_cache_returns_same_object(self):
        a = build_dataset("squad", n_queries=10)
        b = build_dataset("squad", n_queries=10)
        assert a is b

    def test_cache_bypass(self):
        a = build_dataset("squad", n_queries=10)
        b = build_dataset("squad", n_queries=10, cache=False)
        assert a is not b


class TestBundleIntegrity:
    @pytest.fixture(params=list(DATASET_NAMES))
    def bundle(self, request, all_bundles):
        return all_bundles[request.param]

    def test_every_fact_in_exactly_one_chunk(self, bundle):
        placed = [fid for fids in bundle.chunk_facts.values() for fid in fids]
        assert len(placed) == len(set(placed))
        assert set(placed) == set(bundle.facts)

    def test_fact_sentences_present_in_chunks(self, bundle):
        fact_chunk = {
            fid: cid
            for cid, fids in bundle.chunk_facts.items()
            for fid in fids
        }
        for fid, fact in list(bundle.facts.items())[:20]:
            chunk = bundle.store.get(fact_chunk[fid])
            assert fact.sentence in chunk.text

    def test_queries_reference_known_facts(self, bundle):
        for q in bundle.queries:
            for fid in q.truth.required_fact_ids:
                assert fid in bundle.facts

    def test_query_text_mentions_fact_entities(self, bundle):
        for q in bundle.queries[:10]:
            for fid in q.truth.required_fact_ids:
                entity_word = bundle.facts[fid].entity.split()[0].lower()
                assert entity_word in q.text.lower()

    def test_joint_reasoning_iff_multi_piece_mostly(self, bundle):
        for q in bundle.queries:
            if q.truth.pieces_of_information > 1:
                assert q.truth.joint_reasoning

    def test_chunk_sizes_respect_spec(self, bundle):
        for chunk_id in list(bundle.chunk_facts)[:50]:
            chunk = bundle.store.get(chunk_id)
            assert chunk.n_tokens <= bundle.chunk_tokens + 32


class TestTable1Calibration:
    @pytest.mark.parametrize("name,input_lo,input_hi,output_hi", [
        ("squad", 300, 2_300, 20),
        ("musique", 800, 5_500, 35),
        ("finsec", 3_000, 11_000, 70),
        ("qmsum", 3_000, 13_000, 90),
    ])
    def test_token_ranges(self, all_bundles, name, input_lo, input_hi,
                          output_hi):
        row = all_bundles[name].table1_row()
        assert input_lo <= row["input_p10"] <= row["input_p90"] <= input_hi
        assert row["output_p10"] >= 3
        assert row["output_p90"] <= output_hi


class TestRetrievalQuality:
    def test_recall_at_3n_is_high(self, all_bundles):
        """Paper footnote 5: retrievers need 2-3x slack to find the
        needed information."""
        for name, bundle in all_bundles.items():
            recalls = []
            for q in bundle.queries:
                relevant = bundle.relevant_chunk_ids(q)
                hits = bundle.store.search(
                    q.text, 3 * q.truth.pieces_of_information
                )
                found = {h.chunk.chunk_id for h in hits}
                recalls.append(len(relevant & found) / len(relevant))
            assert np.mean(recalls) > 0.7, name

    def test_recall_improves_with_k(self, finsec_bundle):
        def recall_at(mult):
            vals = []
            for q in finsec_bundle.queries:
                relevant = finsec_bundle.relevant_chunk_ids(q)
                hits = finsec_bundle.store.search(
                    q.text, mult * q.truth.pieces_of_information
                )
                found = {h.chunk.chunk_id for h in hits}
                vals.append(len(relevant & found) / len(relevant))
            return np.mean(vals)

        assert recall_at(1) < recall_at(2) < recall_at(3) + 0.01


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        a = build_dataset("musique", seed=3, n_queries=10, cache=False)
        b = build_dataset("musique", seed=3, n_queries=10, cache=False)
        assert [q.text for q in a.queries] == [q.text for q in b.queries]
        assert set(a.facts) == set(b.facts)

    def test_different_seed_differs(self):
        a = build_dataset("musique", seed=3, n_queries=10, cache=False)
        b = build_dataset("musique", seed=4, n_queries=10, cache=False)
        assert [q.text for q in a.queries] != [q.text for q in b.queries]


class TestFactRendering:
    def test_styles_differ(self):
        args = ("Acme corp", "net revenue q1 2024", "azure delta")
        plain = Fact.render_sentence(*args, style="plain")
        report = Fact.render_sentence(*args, style="report")
        meeting = Fact.render_sentence(*args, style="meeting")
        assert len({plain, report, meeting}) == 3
        for s in (plain, report, meeting):
            assert "azure delta" in s

    def test_view_projects_tokens(self, finsec_bundle):
        fact = next(iter(finsec_bundle.facts.values()))
        view = fact.view()
        assert view.fact_id == fact.fact_id
        assert len(view.value_tokens) >= 1
        assert view.verbosity == fact.verbosity
