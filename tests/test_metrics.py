"""Unit + integration tests for the multi-metric quality harness
(``repro.evaluation.metrics``, ``docs/EVALUATION.md``).

Covers the metric edge cases (empty context, zero-token answers,
template-only answers), the determinism contract (same bundle content
→ bit-identical scores across builds, processes, and hash seeds), the
exact-duplicate cache-hit parity guarantee, and the quality-SLO spec
layer.
"""

import json
import math
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.baselines import FixedConfigPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data import build_dataset
from repro.evaluation.metrics import (
    METRIC_NAMES,
    MetricHarness,
    QualityMetrics,
    QualitySLO,
)
from repro.evaluation.slo import evaluate_quality_slo
from repro.experiments.common import run_policy
from repro.util.ids import canonical_query_id
from repro.workload import zipfian_workload


@pytest.fixture(scope="module")
def bundle():
    return build_dataset("finsec", seed=0, n_queries=12)


@pytest.fixture(scope="module")
def harness(bundle):
    return MetricHarness(bundle)


@pytest.fixture(scope="module")
def query(bundle):
    return bundle.queries[0]


def reference_answer(bundle, query) -> list[str]:
    """Template tokens plus every required fact's value tokens — the
    fully grounded, fully relevant answer."""
    tokens = list(query.truth.answer_template_tokens)
    for fact_id in query.truth.required_fact_ids:
        tokens.extend(bundle.facts[fact_id].value_tokens)
    return tokens


class TestMetricValues:
    def test_reference_answer_scores_high(self, bundle, harness, query):
        chunk_ids = list(bundle.relevant_chunk_ids(query))
        m = harness.score(query, reference_answer(bundle, query), chunk_ids)
        for name in METRIC_NAMES:
            assert 0.0 <= m.get(name) <= 1.0
        # Every claim token is planted in a relevant chunk, every
        # required fact is covered, every retrieved chunk is relevant.
        assert m.faithfulness == 1.0
        assert m.context_precision == 1.0
        assert m.context_recall == 1.0
        assert m.answer_relevancy > 0.1

    def test_empty_context(self, bundle, harness, query):
        """No retrieved chunks: claims are ungrounded, nothing is
        relevant, nothing is recalled."""
        m = harness.score(query, reference_answer(bundle, query), [])
        assert m.faithfulness == 0.0
        assert m.context_precision == 0.0
        assert m.context_recall == 0.0
        assert m.answer_relevancy > 0.0  # relevancy ignores context

    def test_zero_token_answer(self, bundle, harness, query):
        chunk_ids = list(bundle.relevant_chunk_ids(query))
        m = harness.score(query, [], chunk_ids)
        # Nothing asserted -> vacuously faithful; nothing to embed ->
        # zero relevancy. Context metrics don't depend on the answer.
        assert m.faithfulness == 1.0
        assert m.answer_relevancy == 0.0
        assert m.context_recall == 1.0

    def test_template_only_answer_is_vacuously_faithful(
            self, bundle, harness, query):
        template = list(query.truth.answer_template_tokens)
        assert harness.faithfulness(query, template, []) == 1.0

    def test_ungroundable_tokens_cut_faithfulness(
            self, bundle, harness, query):
        chunk_ids = list(bundle.relevant_chunk_ids(query))
        grounded = reference_answer(bundle, query)
        noisy = grounded + ["≠wrong0", "≠wrong1"]
        assert (harness.faithfulness(query, noisy, chunk_ids)
                < harness.faithfulness(query, grounded, chunk_ids))

    def test_precision_is_rank_weighted(self, bundle, harness, query):
        relevant = list(bundle.relevant_chunk_ids(query))[:1]
        # Any chunk id outside the relevant set works as a distractor.
        distractor = next(
            cid for cid in bundle.chunk_facts
            if cid not in set(bundle.relevant_chunk_ids(query)))
        top = harness.context_precision(query, relevant + [distractor])
        buried = harness.context_precision(query, [distractor] + relevant)
        assert top == 1.0
        assert 0.0 < buried < top

    def test_irrelevant_context_scores_zero_precision(
            self, bundle, harness, query):
        relevant = set(bundle.relevant_chunk_ids(query))
        distractors = [cid for cid in bundle.chunk_facts
                       if cid not in relevant][:3]
        assert harness.context_precision(query, distractors) == 0.0

    def test_get_rejects_unknown_metric(self):
        m = QualityMetrics(1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="unknown metric"):
            m.get("f1")


class TestQualitySLOSpec:
    def test_parse_roundtrip(self):
        slo = QualitySLO.parse("faithfulness>=0.8")
        assert slo == QualitySLO("faithfulness", 0.8)
        assert slo.spec == "faithfulness>=0.8"
        assert QualitySLO.parse(slo.spec) == slo

    def test_parse_strips_whitespace(self):
        assert (QualitySLO.parse("context_recall >= 0.5")
                == QualitySLO("context_recall", 0.5))

    @pytest.mark.parametrize("spec", [
        "faithfulness",            # no operator
        "faithfulness>=high",      # non-numeric threshold
        "f1>=0.5",                 # unknown metric
        "faithfulness>=1.5",       # out of range
    ])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            QualitySLO.parse(spec)


class TestDeterminism:
    def test_same_bundle_content_same_scores(self, bundle, query):
        """Two independently built bundles with the same content give
        bit-identical metrics (no RNG, no wall clock, no id() leaks)."""
        rebuilt = build_dataset("finsec", seed=0, n_queries=12)
        a = MetricHarness(bundle)
        b = MetricHarness(rebuilt)
        answer = reference_answer(bundle, query)
        chunk_ids = list(bundle.relevant_chunk_ids(query))[::-1]
        assert (a.score(query, answer, chunk_ids)
                == b.score(rebuilt.queries[0], answer, chunk_ids))

    def test_scores_identical_across_processes(self, tmp_path):
        """Fresh interpreters with different hash seeds produce the
        same scores — the cross-process half of the determinism
        contract (docs/EVALUATION.md)."""
        script = tmp_path / "score.py"
        script.write_text(
            "import json\n"
            "from repro.data import build_dataset\n"
            "from repro.evaluation.metrics import MetricHarness\n"
            "bundle = build_dataset('finsec', seed=0, n_queries=6)\n"
            "harness = MetricHarness(bundle)\n"
            "out = []\n"
            "for q in bundle.queries:\n"
            "    tokens = list(q.truth.answer_template_tokens)\n"
            "    for fid in q.truth.required_fact_ids:\n"
            "        tokens.extend(bundle.facts[fid].value_tokens)\n"
            "    m = harness.score(q, tokens,\n"
            "                      list(bundle.relevant_chunk_ids(q)))\n"
            "    out.append([m.faithfulness, m.answer_relevancy,\n"
            "                m.context_precision, m.context_recall])\n"
            "print(json.dumps(out))\n"
        )
        src = str(Path(repro.__file__).parents[1])
        outputs = []
        for hash_seed in ("0", "42"):
            env = dict(os.environ, PYTHONPATH=src,
                       PYTHONHASHSEED=hash_seed)
            proc = subprocess.run(
                [sys.executable, str(script)], env=env,
                capture_output=True, text=True, check=True)
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert json.loads(outputs[0])  # non-empty, parseable


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def cached_run(self, bundle):
        trace = zipfian_workload(seed=0, pool_size=12, n_periods=4,
                                 period_s=30.0, rate_qps=1.0, zipf_s=1.1)
        return run_policy(
            bundle, FixedConfigPolicy(RAGConfig(SynthesisMethod.STUFF, 6)),
            workload=trace, quality_metrics=True,
            result_cache="exact", cache_capacity=64)

    def test_every_record_is_scored(self, cached_run):
        assert cached_run.quality_metrics
        assert cached_run.n_quality_scored == len(cached_run.records)
        for name in METRIC_NAMES:
            assert math.isfinite(cached_run.mean_metric(name))

    def test_mean_metric_rejects_unknown_name(self, cached_run):
        with pytest.raises(ValueError):
            cached_run.mean_metric("f1")

    def test_exact_hits_reproduce_miss_metrics(self, cached_run):
        """An exact-duplicate hit serves the cached answer against the
        cached context, so all four metrics equal the original miss's
        — bit for bit, not approximately."""
        first_miss = {}
        for r in cached_run.records:
            cid = canonical_query_id(r.query_id)
            if not r.cache_hit and cid not in first_miss:
                first_miss[cid] = r
        hits = [r for r in cached_run.records if r.cache_hit]
        assert hits, "trace produced no cache hits"
        for r in hits:
            miss = first_miss[canonical_query_id(r.query_id)]
            for name in METRIC_NAMES:
                assert getattr(r, name) == getattr(miss, name)

    def test_quality_off_leaves_records_unscored(self, bundle):
        result = run_policy(
            bundle, FixedConfigPolicy(RAGConfig(SynthesisMethod.STUFF, 6)))
        assert not result.quality_metrics
        assert result.n_quality_scored == 0
        assert all(r.faithfulness is None for r in result.records)
        assert math.isnan(result.mean_faithfulness)


class TestQualitySLOEvaluation:
    def test_trivial_threshold_attains_fully(self, bundle):
        result = run_policy(
            bundle, FixedConfigPolicy(RAGConfig(SynthesisMethod.STUFF, 6)),
            quality_metrics=True)
        report = evaluate_quality_slo(result, "faithfulness>=0.0")
        assert report.n_scored == len(result.records)
        assert report.attainment == 1.0
        assert report.shortfall == 0.0
        assert report.meets()

    def test_unscored_run_reports_zero_attainment(self, bundle):
        result = run_policy(
            bundle, FixedConfigPolicy(RAGConfig(SynthesisMethod.STUFF, 6)))
        report = evaluate_quality_slo(
            result, QualitySLO("faithfulness", 0.5))
        # Records exist but none were scored: attainment 0.0 (mirrors
        # slo_attainment's unstamped convention), mean unknown.
        assert report.n_queries == len(result.records)
        assert report.n_scored == 0
        assert report.attainment == 0.0
        assert math.isnan(report.mean_value)
        assert not report.meets()

    def test_as_row_renders(self, bundle):
        result = run_policy(
            bundle, FixedConfigPolicy(RAGConfig(SynthesisMethod.STUFF, 6)),
            quality_metrics=True)
        row = evaluate_quality_slo(result, "context_recall>=0.5").as_row()
        assert row["slo"] == "context_recall>=0.5"
        assert row["queries"] == len(result.records)
