"""Unit + property tests for the paged KV-cache block manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.kv_cache import BlockManager


class TestBlockManager:
    def test_initial_state(self):
        bm = BlockManager(n_blocks=100, block_tokens=16)
        assert bm.free_blocks == 100
        assert bm.used_blocks == 0
        assert bm.n_sequences == 0

    def test_blocks_needed_rounds_up(self):
        bm = BlockManager(100, 16)
        assert bm.blocks_needed(0) == 0
        assert bm.blocks_needed(1) == 1
        assert bm.blocks_needed(16) == 1
        assert bm.blocks_needed(17) == 2

    def test_allocate_free_roundtrip(self):
        bm = BlockManager(100, 16)
        bm.allocate(1, 100)  # 7 blocks
        assert bm.free_blocks == 93
        bm.free(1)
        assert bm.free_blocks == 100

    def test_double_allocate_rejected(self):
        bm = BlockManager(100, 16)
        bm.allocate(1, 10)
        with pytest.raises(ValueError, match="already"):
            bm.allocate(1, 10)

    def test_oom_raises(self):
        bm = BlockManager(4, 16)
        with pytest.raises(MemoryError):
            bm.allocate(1, 100)

    def test_free_unknown_raises(self):
        bm = BlockManager(4, 16)
        with pytest.raises(KeyError):
            bm.free(99)

    def test_watermark_blocks_reserved(self):
        bm = BlockManager(10, 16)
        assert bm.can_allocate(16 * 10, watermark_blocks=0)
        assert not bm.can_allocate(16 * 10, watermark_blocks=1)

    def test_utilization(self):
        bm = BlockManager(10, 16)
        bm.allocate(1, 16 * 5)
        assert bm.utilization() == pytest.approx(0.5)

    def test_allocation_of(self):
        bm = BlockManager(10, 16)
        alloc = bm.allocate(7, 33)
        assert bm.allocation_of(7) is alloc
        assert alloc.n_blocks == 3
        assert bm.allocation_of(8) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockManager(0, 16)
        with pytest.raises(ValueError):
            BlockManager(10, 0)


@settings(deadline=None, max_examples=50)
@given(st.lists(st.integers(min_value=1, max_value=400),
                min_size=1, max_size=30))
def test_accounting_invariant_under_alloc_free(sizes):
    """Allocate everything that fits, free it all: blocks conserved."""
    bm = BlockManager(n_blocks=64, block_tokens=16)
    allocated: list[int] = []
    for seq_id, tokens in enumerate(sizes):
        if bm.can_allocate(tokens):
            bm.allocate(seq_id, tokens)
            allocated.append(seq_id)
        assert 0 <= bm.free_blocks <= bm.n_blocks
        assert bm.used_blocks + bm.free_blocks == bm.n_blocks
    for seq_id in allocated:
        bm.free(seq_id)
    assert bm.free_blocks == bm.n_blocks
    assert bm.n_sequences == 0
