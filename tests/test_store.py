"""Unit tests for the vector store."""

import pytest

from repro.retrieval.chunker import Chunk
from repro.retrieval.embedding import HashedEmbedding
from repro.retrieval.store import VectorStore


def make_chunk(cid: str, text: str) -> Chunk:
    return Chunk(chunk_id=cid, doc_id="d", text=text,
                 n_tokens=len(text.split()), position=0)


@pytest.fixture()
def store():
    s = VectorStore(embedding=HashedEmbedding(dim=64))
    s.add_chunks([
        make_chunk("c0", "nvidia operating cost rose in q1 2024"),
        make_chunk("c1", "apple revenue grew across asia markets"),
        make_chunk("c2", "weather tomorrow will be rainy in paris"),
    ])
    return s


class TestVectorStore:
    def test_len(self, store):
        assert len(store) == 3

    def test_search_ranks_relevant_first(self, store):
        hits = store.search("nvidia operating cost q1", k=3)
        assert hits[0].chunk.chunk_id == "c0"
        assert [h.rank for h in hits] == [0, 1, 2]

    def test_search_k_clamped_to_store_size(self, store):
        assert len(store.search("anything", k=10)) == 3

    def test_get_roundtrip(self, store):
        assert store.get("c1").text.startswith("apple")

    def test_get_unknown_raises(self, store):
        with pytest.raises(KeyError):
            store.get("nope")

    def test_duplicate_chunk_id_rejected(self, store):
        with pytest.raises(ValueError, match="duplicate"):
            store.add_chunks([make_chunk("c0", "again")])

    def test_empty_store_search(self):
        s = VectorStore(embedding=HashedEmbedding(dim=64))
        assert s.search("whatever", k=5) == []

    def test_invalid_k(self, store):
        with pytest.raises(ValueError):
            store.search("x", k=0)

    def test_add_empty_is_noop(self, store):
        store.add_chunks([])
        assert len(store) == 3

    def test_distances_nondecreasing(self, store):
        hits = store.search("nvidia cost", k=3)
        distances = [h.distance for h in hits]
        assert distances == sorted(distances)
