"""Unit tests for shared experiment infrastructure."""

import pytest

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.evaluation.runner import QueryRecord, RunResult
from repro.experiments.common import (
    DEFAULT_RATES,
    ExperimentReport,
    fixed_config_grid,
    is_diverging,
    select_best_quality,
    select_closest_quality,
    select_similar_delay,
)
from repro.experiments.service_time import isolated_plan_seconds
from repro.llm import A40, ClusterSpec, MISTRAL_7B_AWQ
from repro.llm.costs import RooflineCostModel
from repro.serving.engine import EngineStats
from repro.synthesis import make_synthesizer
from repro.evaluation.costs import CostLedger


def fake_record(qid: str, arrival: float, finish: float,
                f1: float = 0.5) -> QueryRecord:
    return QueryRecord(
        query_id=qid, policy="p", dataset="d",
        arrival_time=arrival, decision_time=arrival, finish_time=finish,
        config=RAGConfig(SynthesisMethod.STUFF, 5),
        f1=f1, expected_f1=f1, coverage=1.0,
        profiler_seconds=0.0, profiler_dollars=0.0,
        n_chunks_retrieved=5, chunks_clipped=False, fell_back=False,
        used_recent_spaces=False, confidence=None, queueing_delay=0.0,
        prefill_tokens=100, output_tokens=10,
    )


def fake_result(delays: list[float], f1: float = 0.5,
                spacing: float = 1.0) -> RunResult:
    records = [
        fake_record(f"q{i}", arrival=i * spacing,
                    finish=i * spacing + d, f1=f1)
        for i, d in enumerate(delays)
    ]
    makespan = max(r.finish_time for r in records)
    return RunResult(policy="p", dataset="d", records=records,
                     makespan=makespan, engine_stats=EngineStats(),
                     ledger=CostLedger())


class TestDivergenceDetection:
    def test_stable_run_not_flagged(self):
        result = fake_result([1.0] * 40)
        assert not is_diverging(result)

    def test_growing_delays_flagged(self):
        # Queue builds: delay grows linearly with arrival index.
        result = fake_result([0.5 + 0.8 * i for i in range(40)])
        assert is_diverging(result)

    def test_bulk_drain_flagged(self):
        # All queries finish long after the arrival window (makespan
        # far beyond last arrival) even though per-query delays are
        # roughly flat.
        records = [fake_record(f"q{i}", arrival=i * 1.0,
                               finish=500.0 + i * 0.01)
                   for i in range(40)]
        result = RunResult(policy="p", dataset="d", records=records,
                           makespan=505.0, engine_stats=EngineStats(),
                           ledger=CostLedger())
        assert is_diverging(result)

    def test_few_records_never_flagged(self):
        assert not is_diverging(fake_result([100.0, 200.0]))


class TestSelectionRules:
    def test_best_quality_prefers_stable(self):
        stable = fake_result([1.0] * 40, f1=0.5)
        diverging = fake_result([0.5 + 1.0 * i for i in range(40)], f1=0.9)
        assert select_best_quality([stable, diverging]) is stable

    def test_best_quality_falls_back_when_all_diverge(self):
        a = fake_result([0.5 + 1.0 * i for i in range(40)], f1=0.4)
        b = fake_result([0.5 + 1.0 * i for i in range(40)], f1=0.6)
        assert select_best_quality([a, b]) is b

    def test_closest_quality_prefers_not_above_target(self):
        low = fake_result([1.0] * 10, f1=0.45)
        high = fake_result([1.0] * 10, f1=0.58)
        assert select_closest_quality([low, high], target_f1=0.55) is low

    def test_closest_quality_all_above_takes_nearest(self):
        a = fake_result([1.0] * 10, f1=0.60)
        b = fake_result([1.0] * 10, f1=0.75)
        assert select_closest_quality([a, b], target_f1=0.5) is a

    def test_similar_delay(self):
        fast = fake_result([1.0] * 10)
        slow = fake_result([9.0] * 10)
        assert select_similar_delay([fast, slow], target_delay=2.0) is fast


class TestGridAndRates:
    def test_grid_covers_all_methods(self):
        for dataset in DEFAULT_RATES:
            methods = {c.synthesis_method for c in fixed_config_grid(dataset)}
            assert methods == set(SynthesisMethod)

    def test_rates_defined_for_all_datasets(self):
        assert set(DEFAULT_RATES) == {"squad", "musique", "finsec", "qmsum"}
        assert all(r > 0 for r in DEFAULT_RATES.values())


class TestExperimentReport:
    def test_add_and_format(self):
        report = ExperimentReport("demo")
        report.add_row(a=1, b=2.5)
        report.add_note("hello")
        text = report.format()
        assert "demo" in text and "hello" in text and "2.50" in text


class TestIsolatedServiceTime:
    cost = RooflineCostModel(MISTRAL_7B_AWQ, ClusterSpec(A40))

    def _plan(self, method, k=4, ilen=100):
        config = RAGConfig(method, k,
                           ilen if method.uses_intermediate_length else 0)
        return make_synthesizer(method).build_plan(
            "q", 30, [500] * k, 20, config)

    def test_positive(self):
        for method in SynthesisMethod:
            assert isolated_plan_seconds(self._plan(method), self.cost) > 0

    def test_map_reduce_slower_than_stuff(self):
        stuff = isolated_plan_seconds(
            self._plan(SynthesisMethod.STUFF), self.cost)
        mr = isolated_plan_seconds(
            self._plan(SynthesisMethod.MAP_REDUCE), self.cost)
        assert mr > stuff

    def test_monotone_in_chunks(self):
        small = isolated_plan_seconds(
            self._plan(SynthesisMethod.STUFF, k=2), self.cost)
        large = isolated_plan_seconds(
            self._plan(SynthesisMethod.STUFF, k=12), self.cost)
        assert large > small
