"""Unit tests for report formatting."""

from repro.evaluation.reports import Reporter, format_ratio, format_table


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_basic_alignment(self):
        out = format_table([{"name": "a", "value": 1.5},
                            {"name": "bb", "value": 20.25}])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_column_selection(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_title(self):
        out = format_table([{"a": 1}], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_bool_formatting(self):
        out = format_table([{"flag": True}])
        assert "yes" in out

    def test_small_float_precision(self):
        out = format_table([{"x": 0.00012}])
        assert "0.00012" in out


class TestFormatRatio:
    def test_normal(self):
        assert format_ratio(4.0, 2.0) == "2.00x"

    def test_zero_denominator(self):
        assert format_ratio(4.0, 0.0) == "n/a"


class TestReporter:
    def test_collects_and_emits(self, capsys):
        r = Reporter("demo")
        r.add("hello")
        r.add_table([{"a": 1}])
        r.emit()
        out = capsys.readouterr().out
        assert "demo" in out
        assert "hello" in out
        assert "a" in out
