"""Event-driven cluster stepping: the lockstep-equivalence guarantee,
the idle-wakeup protocol, and heterogeneous replica speeds.

The tentpole invariant: driving an engine/cluster through
``EventLoop`` + ``StepDriver`` (step events, wake on admission, sleep
when idle) produces a **byte-identical** iteration trace to the manual
lockstep loop (`engine.step()` while the clock trails the next
arrival) that `tests/test_cluster_golden.py` and the pre-refactor
runner used. Homogeneous fleets must be provably behavior-preserving
before heterogeneous speeds are allowed to diverge.
"""

from __future__ import annotations

import pytest

from repro.llm import A40, ClusterSpec, MISTRAL_7B_AWQ
from repro.serving import (
    ClusterEngine,
    EngineConfig,
    InferenceRequest,
    ServingEngine,
)
from repro.serving.cluster import (
    LeastOutstandingRouter,
    ROUTER_NAMES,
)
from repro.sim import EventLoop
from repro.util.rng import RngStreams
from repro.util.units import GB

ROOT_SEED = 4242


def build_config(pool_gb: float = 1.0, policy: str = "fcfs") -> EngineConfig:
    return EngineConfig(
        model=MISTRAL_7B_AWQ,
        cluster=ClusterSpec(A40),
        kv_pool_cap_bytes=int(pool_gb * GB),
        policy=policy,
    )


def request_specs(seed: int, n_requests: int = 40,
                  mean_gap: float = 0.04) -> list[dict]:
    rng = RngStreams(seed).get("cluster-events", "workload")
    specs: list[dict] = []
    t = 0.0
    for _ in range(n_requests):
        t += float(rng.exponential(mean_gap))
        app = ("" if rng.random() < 0.4
               else f"app-{int(rng.integers(0, 8))}")
        specs.append(dict(
            prompt_tokens=int(rng.integers(50, 2_000)),
            output_tokens=int(rng.integers(1, 30)),
            arrival_time=t,
            app_id=app,
        ))
    return specs


def normalize(step_result, idx: dict[int, int]) -> tuple:
    """A (Cluster)StepInfo as comparable values (ids -> submit order)."""
    replica_id = 0
    info = step_result
    if hasattr(info, "info"):  # ClusterStepInfo
        replica_id = info.replica_id
        info = info.info
    return (
        replica_id,
        info.start,
        info.duration,
        info.prefill_tokens,
        info.n_prefill_seqs,
        info.n_decode_seqs,
        info.kv_tokens_in_batch,
        tuple(idx[r.request_id] for r in info.admitted),
        tuple(idx[r.request_id] for r in info.finished),
    )


def drive_lockstep(engine, specs: list[dict]) -> list[tuple]:
    """The legacy manual interleave: step while the clock trails the
    next arrival (strict ``<``), else advance + submit."""
    idx: dict[int, int] = {}
    trace: list[tuple] = []
    i = 0
    while i < len(specs) or engine.has_work():
        next_t = specs[i]["arrival_time"] if i < len(specs) else float("inf")
        if engine.has_work() and engine.now < next_t:
            trace.append(normalize(engine.step(), idx))
            continue
        if i >= len(specs):
            break
        engine.advance_to(next_t)
        request = InferenceRequest(**specs[i])
        engine.submit(request)
        idx[request.request_id] = i
        i += 1
    return trace


def drive_events(engine, specs: list[dict]) -> tuple[list[tuple], object, EventLoop]:
    """The event-driven interleave: arrivals are external events, engine
    iterations are StepDriver step events on the same loop."""
    loop = EventLoop()
    idx: dict[int, int] = {}
    trace: list[tuple] = []
    driver = engine.attach(loop)
    driver.on_step = lambda result: trace.append(normalize(result, idx))

    def arrive(t, payload):
        i, spec = payload
        request = InferenceRequest(**spec)
        engine.submit(request)
        idx[request.request_id] = i

    for i, spec in enumerate(specs):
        loop.schedule(spec["arrival_time"], "arrival", arrive, (i, spec))
    loop.run()
    return trace, driver, loop


class TestLockstepEquivalence:
    """Homogeneous speeds: event-driven == manual lockstep, byte for byte."""

    def test_bare_engine_trace_identical(self):
        specs = request_specs(ROOT_SEED)
        golden = drive_lockstep(ServingEngine(build_config()), specs)
        trace, driver, loop = drive_events(ServingEngine(build_config()), specs)
        assert len(golden) > len(specs) // 2  # real multi-iteration run
        assert repr(trace) == repr(golden)
        assert driver.n_steps == len(golden)
        assert not loop  # fully drained, no stranded step events

    @pytest.mark.parametrize("router", ROUTER_NAMES)
    def test_three_replica_cluster_trace_identical(self, router):
        specs = request_specs(ROOT_SEED + 1, n_requests=50, mean_gap=0.02)
        golden = drive_lockstep(
            ClusterEngine(build_config(), n_replicas=3, router=router,
                          seed=ROOT_SEED), specs)
        trace, _, _ = drive_events(
            ClusterEngine(build_config(), n_replicas=3, router=router,
                          seed=ROOT_SEED), specs)
        replicas_used = {step[0] for step in golden}
        assert len(replicas_used) > 1  # genuinely multi-replica
        assert repr(trace) == repr(golden), f"router {router} drifted"

    def test_frontier_regression_exercised_and_equivalent(self):
        """Sparse arrivals onto a busy cluster: submissions land on
        idle, lagging replicas, regressing the frontier — the driver
        must reschedule its armed event (n_cancelled > 0) and the
        trace must still match the lockstep loop."""
        specs = request_specs(ROOT_SEED + 2, n_requests=30, mean_gap=0.15)
        golden = drive_lockstep(
            ClusterEngine(build_config(0.5), n_replicas=2,
                          router="round-robin", seed=0), specs)
        trace, _, loop = drive_events(
            ClusterEngine(build_config(0.5), n_replicas=2,
                          router="round-robin", seed=0), specs)
        assert repr(trace) == repr(golden)
        assert loop.n_cancelled > 0  # reschedule path genuinely taken

    @pytest.mark.tier2
    def test_equivalence_over_random_schedules(self):
        """Property: 30 random (replica count, workload, router)
        combinations from named rng streams all match exactly."""
        rngs = RngStreams(ROOT_SEED + 3)
        for index in range(30):
            rng = rngs.fresh("equiv", index)
            n_replicas = int(rng.integers(1, 5))
            router = ROUTER_NAMES[int(rng.integers(0, len(ROUTER_NAMES)))]
            specs = request_specs(1000 + index,
                                  n_requests=int(rng.integers(5, 25)),
                                  mean_gap=float(rng.uniform(0.01, 0.2)))
            golden = drive_lockstep(
                ClusterEngine(build_config(0.75), n_replicas=n_replicas,
                              router=router, seed=index), specs)
            trace, _, _ = drive_events(
                ClusterEngine(build_config(0.75), n_replicas=n_replicas,
                              router=router, seed=index), specs)
            assert repr(trace) == repr(golden), (
                f"schedule {index} ({n_replicas} replicas, {router}) drifted"
            )


class TestIdleWakeup:
    def test_wake_on_admission_sleep_when_drained(self):
        # Two bursts separated by a long idle gap: the driver must
        # wake twice, sleep twice, and hold no events in between.
        config = build_config()
        engine = ClusterEngine(config, n_replicas=2, router="round-robin")
        loop = EventLoop()
        driver = engine.attach(loop)

        def burst(t, _):
            for _i in range(2):
                engine.submit(InferenceRequest(
                    prompt_tokens=300, output_tokens=4, arrival_time=t))

        gap_checked: list[bool] = []

        def check_idle(t, _):
            # Mid-gap: cluster drained, so no step event may be armed.
            gap_checked.append(not engine.has_work()
                               and driver.armed_time == float("inf"))

        loop.schedule(0.0, "burst", burst)
        loop.schedule(50.0, "probe", check_idle)
        loop.schedule(100.0, "burst", burst)
        loop.run()
        assert gap_checked == [True]
        assert driver.n_wakes == 2
        assert driver.n_sleeps == 2
        assert not engine.has_work()

    def test_per_replica_wakeup_counters(self):
        engine = ClusterEngine(build_config(), n_replicas=2,
                               router="round-robin")
        for k in range(4):
            engine.submit(InferenceRequest(
                prompt_tokens=200, output_tokens=2, arrival_time=0.0))
        engine.run_until_idle()
        # Round-robin: two requests per replica, each replica woke once
        # (the second submission found it already busy).
        assert [r.stats.wakeups for r in engine.replicas] == [1, 1]
        engine.submit(InferenceRequest(
            prompt_tokens=200, output_tokens=2, arrival_time=1.0))
        assert engine.replicas[0].stats.wakeups == 2
        assert engine.stats.wakeups == 3


class TestHeterogeneousSpeeds:
    def test_speed_halves_throughput_exactly(self):
        """A 0.5x engine takes exactly 2x as long: iteration durations
        scale by a power of two, so the comparison is float-exact."""
        def drain(speed: float) -> ServingEngine:
            engine = ServingEngine(build_config(), speed=speed)
            for i in range(10):
                engine.submit(InferenceRequest(
                    prompt_tokens=800, output_tokens=8, arrival_time=0.0))
            engine.run_until_idle()
            return engine

        fast, slow = drain(1.0), drain(0.5)
        assert slow.stats.iterations == fast.stats.iterations
        assert slow.now == 2.0 * fast.now
        assert slow.stats.busy_seconds == 2.0 * fast.stats.busy_seconds

    def test_default_speed_is_exactly_pre_speed_behavior(self):
        specs = request_specs(ROOT_SEED + 4)
        base = drive_lockstep(ServingEngine(build_config()), specs)
        explicit = drive_lockstep(ServingEngine(build_config(), speed=1.0),
                                  specs)
        assert repr(base) == repr(explicit)

    def test_cluster_speed_validation(self):
        with pytest.raises(ValueError, match="2 entries"):
            ClusterEngine(build_config(), n_replicas=3,
                          replica_speeds=[1.0, 0.5])
        with pytest.raises(ValueError, match="replica_speeds\\[1\\]"):
            ClusterEngine(build_config(), n_replicas=2,
                          replica_speeds=[1.0, 0.0])
        engine = ClusterEngine(build_config(), n_replicas=2,
                               replica_speeds=(1.0, 0.5))
        assert engine.replica_speeds == (1.0, 0.5)
        assert [r.speed for r in engine.replicas] == [1.0, 0.5]
        assert [s.speed for s in engine.snapshots()] == [1.0, 0.5]

    def test_engine_speed_validation(self):
        with pytest.raises(ValueError, match="speed"):
            ServingEngine(build_config(), speed=0.0)
        with pytest.raises(ValueError, match="speed"):
            ServingEngine(build_config(), speed=-1.0)

    def test_least_outstanding_favors_fast_replica(self):
        """Acceptance: on a 1.0x/0.5x fleet under sustained load,
        least-outstanding routes measurably more work to the fast
        replica than round-robin's even split."""
        def serve(router: str) -> ClusterEngine:
            engine = ClusterEngine(build_config(), n_replicas=2,
                                   router=router,
                                   replica_speeds=[1.0, 0.5])
            specs = request_specs(ROOT_SEED + 5, n_requests=60,
                                  mean_gap=0.03)
            # Unpinned requests: pure router behavior.
            for spec in specs:
                spec["app_id"] = ""
            drive_events(engine, specs)
            return engine

        def fast_share(engine: ClusterEngine) -> float:
            finished = [r.stats.requests_finished for r in engine.replicas]
            return finished[0] / sum(finished)

        rr, lo = serve("round-robin"), serve("least-outstanding")
        assert fast_share(rr) == pytest.approx(0.5, abs=0.02)
        assert fast_share(lo) > fast_share(rr) + 0.05
        # The slow replica burns more GPU-seconds per request, so the
        # fast replica finishing more requests is genuine load-awareness.
        assert lo.replicas[0].stats.requests_finished > \
            lo.replicas[1].stats.requests_finished


class _RecordingLeastOutstanding(LeastOutstandingRouter):
    """Records (choice, loads) at every select for invariant checks."""

    def __init__(self) -> None:
        super().__init__()
        self.observations: list[tuple[int, tuple[int, ...]]] = []

    def select(self, replicas):
        choice = super().select(replicas)
        loads = tuple(self.outstanding(r) for r in replicas)
        self.observations.append((choice, loads))
        return choice


@pytest.mark.tier2
class TestRouterPropertiesUnderUnequalSpeeds:
    """Satellite: router determinism and least-outstanding monotonicity
    hold when replicas advance at genuinely different rates."""

    @staticmethod
    def _hetero_speeds(rng, n_replicas: int) -> list[float]:
        return [float(rng.choice([0.25, 0.5, 1.0, 2.0]))
                for _ in range(n_replicas)]

    @pytest.mark.parametrize("router", ROUTER_NAMES)
    def test_router_determinism(self, router):
        """Same seed, same hetero fleet => byte-identical traces."""
        rngs = RngStreams(ROOT_SEED + 6)
        for index in range(10):
            rng = rngs.fresh("det", index)
            n_replicas = int(rng.integers(2, 5))
            speeds = self._hetero_speeds(rng, n_replicas)
            specs = request_specs(2000 + index,
                                  n_requests=int(rng.integers(8, 25)))

            def run_once():
                engine = ClusterEngine(
                    build_config(0.75), n_replicas=n_replicas,
                    router=router, seed=index, replica_speeds=speeds)
                trace, _, _ = drive_events(engine, specs)
                return trace

            assert repr(run_once()) == repr(run_once()), (
                f"{router} nondeterministic on hetero schedule {index}"
            )

    def test_least_outstanding_monotonicity(self):
        """At every routing decision the chosen replica's outstanding
        count is the minimum (ties to the lowest index), regardless of
        how unevenly the replicas' clocks advance."""
        rngs = RngStreams(ROOT_SEED + 7)
        total_selects = 0
        for index in range(15):
            rng = rngs.fresh("mono", index)
            n_replicas = int(rng.integers(2, 5))
            speeds = self._hetero_speeds(rng, n_replicas)
            router = _RecordingLeastOutstanding()
            engine = ClusterEngine(build_config(0.75),
                                   n_replicas=n_replicas, router=router,
                                   replica_speeds=speeds)
            specs = request_specs(3000 + index,
                                  n_requests=int(rng.integers(8, 30)))
            for spec in specs:
                spec["app_id"] = ""  # every request consults the router
            drive_events(engine, specs)
            assert len(router.observations) == len(specs)
            total_selects += len(specs)
            for choice, loads in router.observations:
                assert loads[choice] == min(loads)
                # ties break to the lowest index
                assert choice == min(
                    i for i, load in enumerate(loads) if load == min(loads)
                )
        assert total_selects > 100  # the property saw real coverage


class TestRunnerIntegration:
    def test_run_policy_threads_replica_speeds(self, finsec_bundle):
        from repro.baselines import FixedConfigPolicy
        from repro.config.knobs import RAGConfig, SynthesisMethod
        from repro.experiments.common import run_policy

        result = run_policy(
            finsec_bundle,
            FixedConfigPolicy(RAGConfig(SynthesisMethod.STUFF, 5)),
            rate_qps=6.0, n_queries=12, n_replicas=2,
            router="least-outstanding", replica_speeds=[1.0, 0.5],
        )
        assert result.replica_speeds == [1.0, 0.5]
        assert len(result.records) == 12
        assert sum(s.wakeups for s in result.replica_stats) > 0

    def test_mismatched_speeds_fail_fast(self, finsec_bundle,
                                         engine_config):
        from repro.evaluation.runner import ExperimentRunner

        with pytest.raises(ValueError, match="3 entries.*n_replicas is 2"):
            ExperimentRunner(finsec_bundle, engine_config, n_replicas=2,
                             replica_speeds=[1.0, 0.5, 0.25])

    def test_scheduling_view_exposes_event_time_replica_state(
            self, finsec_bundle, engine_config):
        """Policies see the independent replica clocks and speeds at
        the decision instant (not a shared lockstep clock)."""
        from repro.evaluation.pipeline import QueryPipeline
        from repro.llm.generation import SimulatedGenerator
        from repro.llm.quality import QualityModel

        engine = ClusterEngine(engine_config, n_replicas=2,
                               replica_speeds=[1.0, 0.5])
        # Desynchronize the replica clocks: work on replica 0 only.
        engine.replicas[0].submit(InferenceRequest(
            prompt_tokens=400, output_tokens=6, arrival_time=0.0))
        engine.run_until_idle()
        assert engine.replicas[0].now > engine.replicas[1].now

        pipeline = QueryPipeline(
            bundle=finsec_bundle,
            policy=None,  # make_view never touches the policy
            engine=engine,
            generator=SimulatedGenerator(
                quality=QualityModel(finsec_bundle.quality_params),
                root_seed=0),
        )
        view = pipeline.make_view(finsec_bundle.queries[0])
        assert view.replica_now == tuple(r.now for r in engine.replicas)
        assert view.replica_now[0] > view.replica_now[1]
        assert view.replica_speeds == (1.0, 0.5)
