"""Property tests for the discrete-event kernel (repro.sim.kernel)."""

import pytest

from repro.sim import Clock, EventLoop, StepDriver
from repro.util.rng import RngStreams


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_advance_forward(self):
        clock = Clock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_never_rewinds(self):
        clock = Clock(start=2.0)
        clock.advance_to(1.0)
        assert clock.now == 2.0


class TestEventOrdering:
    def test_equal_timestamps_dispatch_in_insertion_order(self):
        """The stable tie-break: same time => scheduling order."""
        loop = EventLoop()
        fired: list[int] = []
        for i in range(50):
            loop.schedule(1.0, "tick", lambda t, _, i=i: fired.append(i))
        loop.run()
        assert fired == list(range(50))

    def test_time_order_dominates_insertion_order(self):
        loop = EventLoop()
        fired: list[str] = []
        loop.schedule(2.0, "late", lambda t, _: fired.append("late"), None)
        loop.schedule(1.0, "early", lambda t, _: fired.append("early"), None)
        loop.run()
        assert fired == ["early", "late"]

    def test_interleaved_equal_and_distinct_times(self):
        """Random times; equal-time runs must preserve insertion rank."""
        rng = RngStreams(7).get("sim", "kernel-test")
        loop = EventLoop()
        fired: list[tuple[float, int]] = []
        scheduled: list[tuple[float, int]] = []
        for i in range(400):
            t = float(rng.integers(0, 20))  # many collisions
            scheduled.append((t, i))
            loop.schedule(t, "e", lambda _, p: fired.append(p), (t, i))
        loop.run()
        assert fired == sorted(scheduled, key=lambda p: (p[0], p[1]))

    def test_handlers_can_schedule_cascades(self):
        loop = EventLoop()
        fired: list[str] = []

        def first(t, _):
            fired.append("first")
            loop.schedule(t, "child", lambda t2, _2: fired.append("child"))

        loop.schedule(1.0, "first", first)
        loop.schedule(1.0, "second", lambda t, _: fired.append("second"))
        loop.run()
        # The cascade lands *after* the already-queued equal-time event.
        assert fired == ["first", "second", "child"]

    def test_past_scheduled_event_keeps_raw_time_clock_unmoved(self):
        """Events may be scheduled behind the clock (a cluster frontier
        regresses); substrate-free dispatch hands the handler the raw
        event time while the loop clock itself never rewinds."""
        loop = EventLoop()
        seen: list[float] = []
        loop.schedule(1.0, "a", lambda t, _: None)
        loop.run()
        assert loop.clock.now == 1.0
        loop.schedule(0.5, "late", lambda t, _: seen.append(
            (t, loop.clock.now)))
        loop.run()
        assert seen == [(0.5, 1.0)]  # raw time passed, clock unmoved

    def test_pop_on_empty_raises(self):
        with pytest.raises(IndexError):
            EventLoop().pop()

    def test_peek_time_empty_is_inf(self):
        assert EventLoop().peek_time() == float("inf")


class TestDeterminism:
    @staticmethod
    def _simulate(seed: int) -> list[tuple]:
        """A cascading workload: every event spawns 0-2 follow-ons."""
        rng = RngStreams(seed).get("sim", "determinism")
        loop = EventLoop()
        trace: list[tuple] = []

        def handler(t, payload):
            depth = payload
            trace.append((round(t, 9), depth, loop.clock.now))
            if depth < 3:
                for _ in range(int(rng.integers(0, 3))):
                    loop.schedule(t + float(rng.exponential(0.5)),
                                  "spawn", handler, depth + 1)

        for _ in range(30):
            loop.schedule(float(rng.exponential(1.0)), "root", handler, 0)
        loop.run()
        return trace

    def test_identical_seeds_identical_traces(self):
        assert self._simulate(11) == self._simulate(11)

    def test_different_seeds_differ(self):
        assert self._simulate(11) != self._simulate(12)

    def test_counters(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule(float(i), "e", lambda t, _: None)
        loop.run()
        assert loop.n_scheduled == 5
        assert loop.n_dispatched == 5
        assert not loop


class TestCancellation:
    def test_cancelled_event_never_fires(self):
        loop = EventLoop()
        fired: list[str] = []
        keep = loop.schedule(1.0, "keep", lambda t, _: fired.append("keep"))
        kill = loop.schedule(1.0, "kill", lambda t, _: fired.append("kill"))
        assert loop.cancel(kill) is True
        loop.run()
        assert fired == ["keep"]
        assert keep.seq != kill.seq
        assert loop.n_cancelled == 1
        assert loop.n_dispatched == 1

    def test_cancel_is_idempotent_and_false_after_fire(self):
        loop = EventLoop()
        event = loop.schedule(0.5, "e", lambda t, _: None)
        assert loop.cancel(event) is True
        assert loop.cancel(event) is False  # already cancelled
        fired = loop.schedule(0.5, "e2", lambda t, _: None)
        loop.run()
        assert loop.cancel(fired) is False  # already dispatched

    def test_len_bool_peek_reflect_cancellation(self):
        loop = EventLoop()
        a = loop.schedule(1.0, "a", lambda t, _: None)
        loop.schedule(2.0, "b", lambda t, _: None)
        assert len(loop) == 2
        loop.cancel(a)
        assert len(loop) == 1 and bool(loop)
        assert loop.peek_time() == 2.0  # skips the tombstone
        loop.run()
        assert not loop and loop.peek_time() == float("inf")

    def test_random_cancellations_never_fire_order_insertion_stable(self):
        """Property: under random cancellation the survivors dispatch in
        exactly (time, insertion) order and no cancelled event fires."""
        rng = RngStreams(21).get("sim", "cancel-test")
        loop = EventLoop()
        fired: list[tuple[float, int]] = []
        events = []
        for i in range(500):
            t = float(rng.integers(0, 25))  # many ties
            events.append((t, i, loop.schedule(
                t, "e", lambda _, p: fired.append(p), (t, i))))
        cancelled = set()
        for t, i, event in events:
            if rng.random() < 0.4:
                assert loop.cancel(event) is True
                cancelled.add(i)
        loop.run()
        survivors = [(t, i) for t, i, _ in events if i not in cancelled]
        assert fired == sorted(survivors, key=lambda p: (p[0], p[1]))
        assert loop.n_cancelled == len(cancelled)

    def test_pop_on_all_cancelled_raises(self):
        loop = EventLoop()
        event = loop.schedule(1.0, "e", lambda t, _: None)
        loop.cancel(event)
        with pytest.raises(IndexError):
            loop.pop()


class TestReschedule:
    def test_rescheduled_event_fires_once_at_new_time(self):
        loop = EventLoop()
        fired: list[tuple[str, float]] = []
        event = loop.schedule(5.0, "move", lambda t, _: fired.append(("move", t)))
        loop.schedule(2.0, "mid", lambda t, _: fired.append(("mid", t)))
        moved = loop.reschedule(event, 1.0)
        loop.run()
        assert fired == [("move", 1.0), ("mid", 2.0)]
        assert moved.seq != event.seq
        assert moved.kind == "move"

    def test_reschedule_ranks_as_newest_insertion_at_tied_time(self):
        loop = EventLoop()
        fired: list[str] = []
        early = loop.schedule(0.5, "early", lambda t, _: fired.append("early"))
        loop.schedule(1.0, "sibling", lambda t, _: fired.append("sibling"))
        loop.reschedule(early, 1.0)
        loop.run()
        # The moved event re-enters at a fresh seq: after the sibling.
        assert fired == ["sibling", "early"]

    def test_reschedule_dispatched_or_cancelled_raises(self):
        loop = EventLoop()
        event = loop.schedule(1.0, "e", lambda t, _: None)
        loop.run()
        with pytest.raises(ValueError, match="already dispatched"):
            loop.reschedule(event, 2.0)
        other = loop.schedule(1.0, "e2", lambda t, _: None)
        loop.cancel(other)
        with pytest.raises(ValueError):
            loop.reschedule(other, 2.0)

    def test_reschedule_preserves_payload_and_source(self):
        loop = EventLoop()
        seen: list[object] = []
        marker = object()
        event = loop.schedule(3.0, "e", lambda t, p: seen.append(p),
                              payload=marker, source=marker)
        moved = loop.reschedule(event, 1.0)
        assert moved.source is marker
        loop.run()
        assert seen == [marker]


class TestSourceEventOrdering:
    def test_source_event_yields_to_equal_time_external(self):
        """A step event scheduled *before* an external event at the same
        time still fires after it — matching the legacy polling loop's
        strict ``substrate.now < next_event`` comparison."""
        loop = EventLoop()
        fired: list[str] = []
        src = object()
        loop.schedule(1.0, "step", lambda t, _: fired.append("step"),
                      source=src)
        loop.schedule(1.0, "arrival", lambda t, _: fired.append("arrival"))
        loop.run()
        assert fired == ["arrival", "step"]

    def test_time_still_dominates_rank(self):
        loop = EventLoop()
        fired: list[str] = []
        loop.schedule(1.0, "step", lambda t, _: fired.append("step"),
                      source=object())
        loop.schedule(2.0, "arrival", lambda t, _: fired.append("arrival"))
        loop.run()
        assert fired == ["step", "arrival"]


class TestAttachedSources:
    """run() with attached sources mirrors the substrate advance/clamp."""

    def test_external_event_advances_attached_source(self):
        substrate = _FakeSubstrate(work_units=0, step_seconds=1.0)
        loop = EventLoop()
        seen: list[float] = []
        loop.attach(substrate)
        loop.schedule(4.0, "evt", lambda t, _: seen.append(t))
        loop.run()
        assert seen == [4.0]
        assert substrate.now == 4.0

    def test_handler_observes_overshot_source_clock(self):
        substrate = _FakeSubstrate(work_units=0, step_seconds=1.0)
        substrate.now = 7.5  # source overshot past the event
        loop = EventLoop()
        seen: list[float] = []
        loop.attach(substrate)
        loop.schedule(5.0, "evt", lambda t, _: seen.append(t))
        loop.run()
        assert seen == [7.5]  # clamped, never rewound

    def test_double_attach_rejected(self):
        substrate = _FakeSubstrate(work_units=0, step_seconds=1.0)
        loop = EventLoop()
        loop.attach(substrate)
        with pytest.raises(ValueError, match="already attached"):
            loop.attach(substrate)

    def test_substrate_mode_incompatible_with_sources(self):
        substrate = _FakeSubstrate(work_units=1, step_seconds=1.0)
        loop = EventLoop()
        loop.attach(substrate)
        with pytest.raises(ValueError, match="StepDriver"):
            loop.run(substrate=substrate)

    def test_stranded_work_is_an_error(self):
        """A busy source with no armed step event means the wake
        protocol lost an admission — run() must not silently exit."""
        substrate = _FakeSubstrate(work_units=3, step_seconds=1.0)
        loop = EventLoop()
        loop.attach(substrate)  # no StepDriver arming step events
        loop.schedule(1.0, "evt", lambda t, _: None)
        with pytest.raises(RuntimeError, match="wake protocol"):
            loop.run()


class TestStepDriver:
    def test_drives_substrate_to_completion(self):
        substrate = _FakeSubstrate(work_units=5, step_seconds=1.0)
        loop = EventLoop()
        driver = StepDriver(loop, substrate)
        loop.run()
        assert not substrate.has_work()
        assert substrate.step_times == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert driver.n_steps == 5
        assert driver.n_wakes == 1 and driver.n_sleeps == 1

    def test_matches_legacy_polling_interleave(self):
        """Event-driven stepping reproduces run(substrate=...) exactly:
        steps at 0,1,2 precede the event; the iteration starting at 2
        overshoots to 3, so the handler observes 3.0."""
        substrate = _FakeSubstrate(work_units=5, step_seconds=1.0)
        loop = EventLoop()
        StepDriver(loop, substrate)
        seen: list[float] = []
        loop.schedule(2.5, "evt", lambda t, _: seen.append(t))
        loop.run()
        assert substrate.step_times[:3] == [0.0, 1.0, 2.0]
        assert seen == [3.0]

    def test_idle_substrate_sleeps_until_notified(self):
        substrate = _FakeSubstrate(work_units=0, step_seconds=2.0)
        loop = EventLoop()
        driver = StepDriver(loop, substrate)
        assert driver.armed_time == float("inf")  # asleep, no polling

        def admit(t, _):
            substrate._work = 2
            driver.notify()

        loop.schedule(3.0, "admit", admit)
        loop.run()
        assert substrate.step_times == [3.0, 5.0]
        assert driver.n_wakes == 1

    def test_notify_reschedules_on_frontier_regression(self):
        substrate = _FakeSubstrate(work_units=1, step_seconds=1.0)
        substrate.now = 10.0
        loop = EventLoop()
        driver = StepDriver(loop, substrate)
        assert driver.armed_time == 10.0
        # Admission drags the observable frontier backwards (a cluster
        # submission landing on an idle, lagging replica).
        substrate.now = 4.0
        substrate._work = 2
        driver.notify()
        assert driver.armed_time == 4.0
        loop.run()
        assert substrate.step_times == [4.0, 5.0]
        assert loop.n_cancelled == 1  # the reschedule tombstoned one event


class _FakeSubstrate:
    """Steppable stub: fixed-duration iterations while work remains."""

    def __init__(self, work_units: int, step_seconds: float) -> None:
        self.now = 0.0
        self._work = work_units
        self.step_seconds = step_seconds
        self.step_times: list[float] = []

    def has_work(self) -> bool:
        return self._work > 0

    def step(self):
        self.step_times.append(self.now)
        self.now += self.step_seconds
        self._work -= 1

    def advance_to(self, t: float) -> None:
        if t > self.now:
            self.now = t


class TestSubstrateInterleaving:
    def test_steps_while_clock_trails_next_event(self):
        substrate = _FakeSubstrate(work_units=5, step_seconds=1.0)
        loop = EventLoop()
        seen: list[float] = []
        loop.schedule(2.5, "evt", lambda t, _: seen.append(t))
        loop.run(substrate=substrate)
        # Steps at 0 and 1 and 2 precede the event; the iteration
        # starting at 2 overshoots to 3, so the handler observes 3.0.
        assert substrate.step_times[:3] == [0.0, 1.0, 2.0]
        assert seen == [3.0]

    def test_idle_substrate_jumps_to_event_time(self):
        substrate = _FakeSubstrate(work_units=0, step_seconds=1.0)
        loop = EventLoop()
        seen: list[float] = []
        loop.schedule(4.0, "evt", lambda t, _: seen.append(t))
        loop.run(substrate=substrate)
        assert seen == [4.0]
        assert substrate.now == 4.0

    def test_handler_sees_clamped_time_never_event_time_rewind(self):
        substrate = _FakeSubstrate(work_units=3, step_seconds=10.0)
        loop = EventLoop()
        seen: list[float] = []
        loop.schedule(5.0, "evt", lambda t, _: seen.append(t))
        loop.run(substrate=substrate)
        assert seen == [10.0]  # clamped to the substrate clock

    def test_max_steps_guard(self):
        loop = EventLoop()

        def rearm(t, _):
            loop.schedule(t + 1.0, "rearm", rearm)

        loop.schedule(0.0, "rearm", rearm)
        with pytest.raises(RuntimeError, match="did not drain"):
            loop.run(max_steps=100)
