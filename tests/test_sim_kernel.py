"""Property tests for the discrete-event kernel (repro.sim.kernel)."""

import pytest

from repro.sim import Clock, EventLoop
from repro.util.rng import RngStreams


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_advance_forward(self):
        clock = Clock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_never_rewinds(self):
        clock = Clock(start=2.0)
        clock.advance_to(1.0)
        assert clock.now == 2.0


class TestEventOrdering:
    def test_equal_timestamps_dispatch_in_insertion_order(self):
        """The stable tie-break: same time => scheduling order."""
        loop = EventLoop()
        fired: list[int] = []
        for i in range(50):
            loop.schedule(1.0, "tick", lambda t, _, i=i: fired.append(i))
        loop.run()
        assert fired == list(range(50))

    def test_time_order_dominates_insertion_order(self):
        loop = EventLoop()
        fired: list[str] = []
        loop.schedule(2.0, "late", lambda t, _: fired.append("late"), None)
        loop.schedule(1.0, "early", lambda t, _: fired.append("early"), None)
        loop.run()
        assert fired == ["early", "late"]

    def test_interleaved_equal_and_distinct_times(self):
        """Random times; equal-time runs must preserve insertion rank."""
        rng = RngStreams(7).get("sim", "kernel-test")
        loop = EventLoop()
        fired: list[tuple[float, int]] = []
        scheduled: list[tuple[float, int]] = []
        for i in range(400):
            t = float(rng.integers(0, 20))  # many collisions
            scheduled.append((t, i))
            loop.schedule(t, "e", lambda _, p: fired.append(p), (t, i))
        loop.run()
        assert fired == sorted(scheduled, key=lambda p: (p[0], p[1]))

    def test_handlers_can_schedule_cascades(self):
        loop = EventLoop()
        fired: list[str] = []

        def first(t, _):
            fired.append("first")
            loop.schedule(t, "child", lambda t2, _2: fired.append("child"))

        loop.schedule(1.0, "first", first)
        loop.schedule(1.0, "second", lambda t, _: fired.append("second"))
        loop.run()
        # The cascade lands *after* the already-queued equal-time event.
        assert fired == ["first", "second", "child"]

    def test_past_scheduled_event_keeps_raw_time_clock_unmoved(self):
        """Events may be scheduled behind the clock (a cluster frontier
        regresses); substrate-free dispatch hands the handler the raw
        event time while the loop clock itself never rewinds."""
        loop = EventLoop()
        seen: list[float] = []
        loop.schedule(1.0, "a", lambda t, _: None)
        loop.run()
        assert loop.clock.now == 1.0
        loop.schedule(0.5, "late", lambda t, _: seen.append(
            (t, loop.clock.now)))
        loop.run()
        assert seen == [(0.5, 1.0)]  # raw time passed, clock unmoved

    def test_pop_on_empty_raises(self):
        with pytest.raises(IndexError):
            EventLoop().pop()

    def test_peek_time_empty_is_inf(self):
        assert EventLoop().peek_time() == float("inf")


class TestDeterminism:
    @staticmethod
    def _simulate(seed: int) -> list[tuple]:
        """A cascading workload: every event spawns 0-2 follow-ons."""
        rng = RngStreams(seed).get("sim", "determinism")
        loop = EventLoop()
        trace: list[tuple] = []

        def handler(t, payload):
            depth = payload
            trace.append((round(t, 9), depth, loop.clock.now))
            if depth < 3:
                for _ in range(int(rng.integers(0, 3))):
                    loop.schedule(t + float(rng.exponential(0.5)),
                                  "spawn", handler, depth + 1)

        for _ in range(30):
            loop.schedule(float(rng.exponential(1.0)), "root", handler, 0)
        loop.run()
        return trace

    def test_identical_seeds_identical_traces(self):
        assert self._simulate(11) == self._simulate(11)

    def test_different_seeds_differ(self):
        assert self._simulate(11) != self._simulate(12)

    def test_counters(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule(float(i), "e", lambda t, _: None)
        loop.run()
        assert loop.n_scheduled == 5
        assert loop.n_dispatched == 5
        assert not loop


class _FakeSubstrate:
    """Steppable stub: fixed-duration iterations while work remains."""

    def __init__(self, work_units: int, step_seconds: float) -> None:
        self.now = 0.0
        self._work = work_units
        self.step_seconds = step_seconds
        self.step_times: list[float] = []

    def has_work(self) -> bool:
        return self._work > 0

    def step(self):
        self.step_times.append(self.now)
        self.now += self.step_seconds
        self._work -= 1

    def advance_to(self, t: float) -> None:
        if t > self.now:
            self.now = t


class TestSubstrateInterleaving:
    def test_steps_while_clock_trails_next_event(self):
        substrate = _FakeSubstrate(work_units=5, step_seconds=1.0)
        loop = EventLoop()
        seen: list[float] = []
        loop.schedule(2.5, "evt", lambda t, _: seen.append(t))
        loop.run(substrate=substrate)
        # Steps at 0 and 1 and 2 precede the event; the iteration
        # starting at 2 overshoots to 3, so the handler observes 3.0.
        assert substrate.step_times[:3] == [0.0, 1.0, 2.0]
        assert seen == [3.0]

    def test_idle_substrate_jumps_to_event_time(self):
        substrate = _FakeSubstrate(work_units=0, step_seconds=1.0)
        loop = EventLoop()
        seen: list[float] = []
        loop.schedule(4.0, "evt", lambda t, _: seen.append(t))
        loop.run(substrate=substrate)
        assert seen == [4.0]
        assert substrate.now == 4.0

    def test_handler_sees_clamped_time_never_event_time_rewind(self):
        substrate = _FakeSubstrate(work_units=3, step_seconds=10.0)
        loop = EventLoop()
        seen: list[float] = []
        loop.schedule(5.0, "evt", lambda t, _: seen.append(t))
        loop.run(substrate=substrate)
        assert seen == [10.0]  # clamped to the substrate clock

    def test_max_steps_guard(self):
        loop = EventLoop()

        def rearm(t, _):
            loop.schedule(t + 1.0, "rearm", rearm)

        loop.schedule(0.0, "rearm", rearm)
        with pytest.raises(RuntimeError, match="did not drain"):
            loop.run(max_steps=100)
