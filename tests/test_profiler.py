"""Unit tests for query profiles and the LLM profiler noise model."""

import numpy as np
import pytest

from repro.core.profiler import (
    GPT4O_PROFILER,
    LLAMA70B_PROFILER,
    LLMProfiler,
)
from repro.core.profiles import MAX_PIECES, QueryProfile, profile_is_good
from repro.data.types import QueryTruth


def truth(pieces=3, high=True, joint=True, summary=(60, 120)) -> QueryTruth:
    return QueryTruth(
        complexity_high=high, joint_reasoning=joint,
        required_fact_ids=tuple(f"f{i}" for i in range(pieces)),
        summary_range=summary,
        answer_template_tokens=("answer",),
    )


class TestQueryProfile:
    def test_from_truth(self):
        t = truth()
        p = QueryProfile.from_truth(t)
        assert p.pieces == 3
        assert p.complexity_high and p.joint_reasoning
        assert p.summary_range == (60, 120)

    def test_pieces_clamped_to_max(self):
        t = truth(pieces=15)
        assert QueryProfile.from_truth(t).pieces == MAX_PIECES

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryProfile(True, True, 0, (10, 20), 0.9)
        with pytest.raises(ValueError):
            QueryProfile(True, True, 3, (20, 10), 0.9)
        with pytest.raises(ValueError):
            QueryProfile(True, True, 3, (10, 20), 1.5)


class TestProfileIsGood:
    def test_exact_profile_is_good(self):
        t = truth()
        assert profile_is_good(QueryProfile.from_truth(t), t)

    def test_pieces_within_tolerance(self):
        t = truth(pieces=3)
        p = QueryProfile(True, True, 4, (60, 120), 0.9)
        assert profile_is_good(p, t)
        p = QueryProfile(True, True, 5, (60, 120), 0.9)
        assert not profile_is_good(p, t)

    def test_flipped_binary_is_bad(self):
        t = truth()
        p = QueryProfile(False, True, 3, (60, 120), 0.9)
        assert not profile_is_good(p, t)
        p = QueryProfile(True, False, 3, (60, 120), 0.9)
        assert not profile_is_good(p, t)

    def test_disjoint_summary_range_is_bad(self):
        t = truth(summary=(60, 120))
        p = QueryProfile(True, True, 3, (200, 300), 0.9)
        assert not profile_is_good(p, t)


class TestLLMProfiler:
    def _query(self, bundle, i=0):
        return bundle.queries[i]

    def test_deterministic_per_query(self, finsec_bundle):
        p1 = LLMProfiler(GPT4O_PROFILER, 40, seed=1)
        p2 = LLMProfiler(GPT4O_PROFILER, 40, seed=1)
        q = self._query(finsec_bundle)
        assert p1.profile(q).profile == p2.profile(q).profile

    def test_seed_changes_outcomes(self, finsec_bundle):
        outcomes = set()
        for seed in range(5):
            profiler = LLMProfiler(GPT4O_PROFILER, 40, seed=seed)
            outcomes.add(profiler.profile(self._query(finsec_bundle)).profile)
        assert len(outcomes) > 1 or len(finsec_bundle.queries) == 0

    def test_accuracy_calibration(self, finsec_bundle, qmsum_bundle):
        """Good-profile rate over many queries ≈ spec.base_accuracy."""
        profiler = LLMProfiler(GPT4O_PROFILER, 40, seed=0)
        queries = finsec_bundle.queries + qmsum_bundle.queries
        good = sum(
            profile_is_good(profiler.profile(q).profile, q.truth)
            for q in queries
        )
        rate = good / len(queries)
        assert abs(rate - GPT4O_PROFILER.base_accuracy) < 0.12

    def test_confidence_discriminates(self, finsec_bundle, qmsum_bundle,
                                      musique_bundle, squad_bundle):
        profiler = LLMProfiler(GPT4O_PROFILER, 40, seed=0)
        queries = (finsec_bundle.queries + qmsum_bundle.queries
                   + musique_bundle.queries + squad_bundle.queries)
        good_conf, bad_conf = [], []
        for q in queries:
            result = profiler.profile(q)
            bucket = (good_conf
                      if profile_is_good(result.profile, q.truth)
                      else bad_conf)
            bucket.append(result.profile.confidence)
        assert np.mean(good_conf) > np.mean(bad_conf)

    def test_llama_profiler_less_accurate(self):
        assert (LLAMA70B_PROFILER.base_accuracy
                < GPT4O_PROFILER.base_accuracy)

    def test_feedback_boost_raises_accuracy(self):
        profiler = LLMProfiler(GPT4O_PROFILER, 40)
        base = profiler.accuracy
        profiler.set_accuracy_boost(0.05)
        assert profiler.accuracy == pytest.approx(base + 0.05)

    def test_boost_capped(self):
        profiler = LLMProfiler(GPT4O_PROFILER, 40)
        profiler.set_accuracy_boost(0.5)
        assert profiler.accuracy <= 0.985

    def test_negative_boost_rejected(self):
        profiler = LLMProfiler(GPT4O_PROFILER, 40)
        with pytest.raises(ValueError):
            profiler.set_accuracy_boost(-0.1)

    def test_latency_and_cost_positive(self, finsec_bundle):
        profiler = LLMProfiler(GPT4O_PROFILER, 40)
        result = profiler.profile(self._query(finsec_bundle))
        assert result.api_seconds > 0
        assert result.dollars > 0
        assert result.input_tokens > finsec_bundle.queries[0].n_tokens

    def test_metadata_tokens_increase_input(self, finsec_bundle):
        q = self._query(finsec_bundle)
        small = LLMProfiler(GPT4O_PROFILER, 10).profile(q)
        large = LLMProfiler(GPT4O_PROFILER, 500).profile(q)
        assert large.input_tokens > small.input_tokens
        assert large.api_seconds > small.api_seconds

    def test_bad_metadata_rejected(self):
        with pytest.raises(ValueError):
            LLMProfiler(GPT4O_PROFILER, -1)
