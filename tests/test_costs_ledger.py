"""Unit tests for dollar-cost accounting."""

import pytest

from repro.evaluation.costs import CostLedger, DollarCostModel
from repro.llm import A40, ClusterSpec, GPT_4O


class TestDollarCostModel:
    def test_api_call_uses_model_rates(self):
        model = DollarCostModel()
        cost = model.api_call(GPT_4O, 1000, 100)
        assert cost == pytest.approx(1000 * 2.5e-6 + 100 * 10e-6)

    def test_gpu_time(self):
        model = DollarCostModel(dollar_per_gpu_hour=3.6)
        cluster = ClusterSpec(A40)
        assert model.gpu_time(cluster, 3600) == pytest.approx(3.6)

    def test_rejects_negative(self):
        model = DollarCostModel()
        with pytest.raises(ValueError):
            model.api_call(GPT_4O, -1, 0)
        with pytest.raises(ValueError):
            model.gpu_time(ClusterSpec(A40), -1)


class TestCostLedger:
    def test_accumulates(self):
        ledger = CostLedger()
        ledger.charge_api(GPT_4O, 1000, 10)
        ledger.charge_api(GPT_4O, 1000, 10)
        ledger.charge_gpu(ClusterSpec(A40), 100)
        assert ledger.n_api_calls == 2
        assert ledger.total_dollars == pytest.approx(
            ledger.api_dollars + ledger.gpu_dollars
        )
        assert ledger.api_dollars > 0
        assert ledger.gpu_dollars > 0

    def test_per_query(self):
        ledger = CostLedger()
        ledger.charge_gpu(ClusterSpec(A40), 3600)
        assert ledger.per_query(10) == pytest.approx(ledger.total_dollars / 10)
        assert ledger.per_query(0) == 0.0
