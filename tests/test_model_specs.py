"""Unit tests for model specs, GPU specs and cluster composition."""

import pytest

from repro.llm import (
    A40,
    ClusterSpec,
    GPT_4O,
    GPUSpec,
    LLAMA3_70B_AWQ,
    MISTRAL_7B_AWQ,
    ModelSpec,
    Quantization,
    get_model,
    register_model,
)
from repro.util.units import GB


class TestModelSpec:
    def test_kv_bytes_per_token_mistral(self):
        # 2 (K+V) * 32 layers * 8 kv heads * 128 dim * 2 bytes = 128 KiB
        assert MISTRAL_7B_AWQ.kv_bytes_per_token == 131_072

    def test_weight_bytes_awq_below_fp16(self):
        awq = MISTRAL_7B_AWQ.weight_bytes
        fp16 = MISTRAL_7B_AWQ.n_params * 2
        assert awq < fp16
        assert awq == pytest.approx(MISTRAL_7B_AWQ.n_params * 0.55)

    def test_flops_per_token(self):
        assert MISTRAL_7B_AWQ.flops_per_token == 2 * MISTRAL_7B_AWQ.n_params

    def test_dollar_cost(self):
        cost = GPT_4O.dollar_cost(1_000_000, 0)
        assert cost == pytest.approx(2.50)
        cost = GPT_4O.dollar_cost(0, 1_000_000)
        assert cost == pytest.approx(10.00)

    def test_validation_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ModelSpec(name="bad", n_params=0, n_layers=1, n_kv_heads=1,
                      head_dim=1, max_context=1)

    def test_70b_has_more_kv_than_7b(self):
        assert LLAMA3_70B_AWQ.kv_bytes_per_token > MISTRAL_7B_AWQ.kv_bytes_per_token


class TestRegistry:
    def test_lookup_known(self):
        assert get_model("mistral-7b-awq") is MISTRAL_7B_AWQ

    def test_lookup_unknown_names_known_models(self):
        with pytest.raises(KeyError, match="mistral-7b-awq"):
            get_model("nonexistent-model")

    def test_register_roundtrip(self):
        spec = ModelSpec(name="test-tiny", n_params=1e8, n_layers=4,
                         n_kv_heads=2, head_dim=32, max_context=1024)
        register_model(spec)
        assert get_model("test-tiny") is spec


class TestQuantization:
    def test_awq_speedup_above_fp16(self):
        assert Quantization.AWQ_INT4.compute_speedup > Quantization.FP16.compute_speedup

    def test_fp16_is_two_bytes(self):
        assert Quantization.FP16.bytes_per_param == 2.0


class TestGPUAndCluster:
    def test_a40_memory(self):
        assert A40.memory_bytes == 48 * GB

    def test_effective_flops_below_peak(self):
        assert A40.effective_flops < A40.peak_flops

    def test_gpu_validation(self):
        with pytest.raises(ValueError):
            GPUSpec(name="bad", memory_bytes=0, peak_flops=1, mem_bandwidth=1)

    def test_single_gpu_cluster_has_no_tp_penalty(self):
        one = ClusterSpec(A40, n_gpus=1)
        assert one.effective_flops == A40.effective_flops
        assert one.mem_bandwidth == A40.mem_bandwidth

    def test_two_gpu_cluster_scales_sublinearly(self):
        two = ClusterSpec(A40, n_gpus=2)
        assert A40.effective_flops < two.effective_flops < 2 * A40.effective_flops
        assert two.memory_bytes == 2 * A40.memory_bytes

    def test_dollar_per_second_scales_with_gpus(self):
        one = ClusterSpec(A40, n_gpus=1)
        two = ClusterSpec(A40, n_gpus=2)
        assert two.dollar_per_second() == pytest.approx(2 * one.dollar_per_second())
