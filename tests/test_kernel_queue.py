"""Property tests: the calendar-queue kernel vs a reference heapq.

The kernel's pending set is a calendar queue (near buckets + far-heap
fallback + lazy tombstones + amortized compaction) — pure mechanism.
Its observable contract is the one a plain ``heapq`` ordered by
``(time, rank, seq)`` provides. These tests pin that equivalence under
randomized schedule / cancel / reschedule workloads (including ops
issued from inside firing handlers), that tombstone compaction never
perturbs the surviving order, and that ``bucket_width`` is a pure
performance knob with no observable effect.
"""

from __future__ import annotations

import heapq
import itertools

import pytest

from repro.sim import EventLoop
from repro.sim.kernel import _COMPACT_MIN_DEAD
from repro.util.rng import RngStreams


class _RefHandle:
    __slots__ = ("time", "seq", "payload", "handler", "alive")

    def __init__(self, time, seq, handler, payload):
        self.time = time
        self.seq = seq
        self.handler = handler
        self.payload = payload
        self.alive = True


class ReferenceLoop:
    """Plain-heapq model of the kernel's dispatch contract: strict
    ``(time, seq)`` order (every event here is external, rank 0) with
    lazy-deletion cancellation and cancel-plus-fresh-seq reschedule."""

    def __init__(self):
        self._heap: list[tuple[float, int, _RefHandle]] = []
        self._seq = itertools.count()
        self.now = 0.0

    def schedule(self, time, kind, handler, payload=None):
        handle = _RefHandle(time, next(self._seq), handler, payload)
        heapq.heappush(self._heap, (time, handle.seq, handle))
        return handle

    def cancel(self, handle):
        if not handle.alive:
            return False
        handle.alive = False
        return True

    def reschedule(self, handle, time):
        if not self.cancel(handle):
            raise ValueError("reschedule() requires a pending event")
        return self.schedule(time, "", handle.handler, handle.payload)

    def is_pending(self, handle):
        return handle.alive

    def run(self):
        while self._heap:
            time, _, handle = heapq.heappop(self._heap)
            if not handle.alive:
                continue
            handle.alive = False
            if time > self.now:
                self.now = time
            # Handlers observe the event's own time, which may trail
            # the clock — exactly the kernel's contract.
            handle.handler(time, handle.payload)


# ----------------------------------------------------------------------
# Random op tapes, interpreted identically against both loops
# ----------------------------------------------------------------------
def build_tape(seed: int, n_initial: int = 200, n_max: int = 600):
    """Pure data: pre-run ops plus per-event on-fire ops.

    Event ids number schedule ops in creation order (identical across
    interpreters). Times span [0, 120) with occasional far-future
    outliers so every bucket width exercises both the near buckets and
    the far-heap fallback; on-fire deltas include small negative ones
    (events trailing the loop clock are legal and must order the same).
    """
    rng = RngStreams(seed).get("test", "kernel-queue")
    initial: list[tuple] = []
    on_fire: dict[int, list[tuple]] = {}
    next_id = 0
    live_pool: list[int] = []

    def new_schedule(t):
        nonlocal next_id
        eid = next_id
        next_id += 1
        live_pool.append(eid)
        return ("schedule", float(t), eid)

    for _ in range(n_initial):
        t = float(rng.uniform(0.0, 120.0))
        if rng.random() < 0.05:
            t += 10_000.0  # far beyond any near-bucket span
        initial.append(new_schedule(t))
        u = float(rng.random())
        if u < 0.15 and live_pool:
            initial.append(("cancel",
                            int(rng.choice(live_pool))))
        elif u < 0.30 and live_pool:
            initial.append(("resched", int(rng.choice(live_pool)),
                            float(rng.uniform(0.0, 120.0))))

    # On-fire ops: half the events act when they dispatch. Cancel and
    # reschedule targets come from the pre-run pool only — those are
    # guaranteed to exist whenever any event fires (an already-fired
    # or already-cancelled target exercises the no-op paths).
    pre_run_ids = list(live_pool)
    for eid in range(next_id):
        if rng.random() >= 0.5:
            continue
        ops = []
        for _ in range(int(rng.integers(1, 3))):
            u = float(rng.random())
            if u < 0.5 and next_id < n_max:
                # Time is relative to the firing instant, resolved by
                # the interpreter; reuse new_schedule for id bookkeeping.
                _, _, new_eid = new_schedule(0.0)
                ops.append(("schedule_rel",
                            float(rng.uniform(-0.05, 2.0)), new_eid))
            elif u < 0.75:
                ops.append(("cancel", int(rng.choice(pre_run_ids))))
            else:
                ops.append(("resched_rel", int(rng.choice(pre_run_ids)),
                            float(rng.uniform(-0.05, 2.0))))
        on_fire[eid] = ops
    return initial, on_fire


def interpret(loop, tape) -> list[tuple[int, float]]:
    """Run one tape against ``loop``; return the dispatch sequence."""
    initial, on_fire = tape
    handles: dict[int, object] = {}
    dispatched: list[tuple[int, float]] = []

    def apply(op, now):
        kind = op[0]
        if kind == "schedule":
            handles[op[2]] = loop.schedule(op[1], "ev", fire, op[2])
        elif kind == "schedule_rel":
            handles[op[2]] = loop.schedule(now + op[1], "ev", fire, op[2])
        elif kind == "cancel":
            loop.cancel(handles[op[1]])
        elif kind == "resched":
            if loop.is_pending(handles[op[1]]):
                handles[op[1]] = loop.reschedule(handles[op[1]], op[2])
        elif kind == "resched_rel":
            if loop.is_pending(handles[op[1]]):
                handles[op[1]] = loop.reschedule(handles[op[1]],
                                                 now + op[2])

    def fire(now, eid):
        dispatched.append((eid, now))
        for op in on_fire.get(eid, ()):
            apply(op, now)

    for op in initial:
        apply(op, 0.0)
    loop.run()
    return dispatched


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_dispatch_order_matches_reference_heapq(seed):
    tape = build_tape(seed)
    got = interpret(EventLoop(), tape)
    want = interpret(ReferenceLoop(), tape)
    assert got == want
    assert len(got) > 100  # the tape exercised a real workload


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("width", [1.0 / 1024, 1.0 / 64, 1.0, 16.0])
def test_bucket_width_is_observationally_neutral(seed, width):
    """Any bucket width — from one that scatters the tape across
    thousands of buckets to one that funnels almost everything into
    the far heap's span checks — dispatches identically."""
    tape = build_tape(seed)
    assert (interpret(EventLoop(bucket_width=width), tape)
            == interpret(ReferenceLoop(), tape))


def test_invalid_bucket_width_rejected():
    with pytest.raises(ValueError, match="bucket_width"):
        EventLoop(bucket_width=0.0)


class TestCompaction:
    def test_threshold_compaction_preserves_survivor_order(self):
        """Cancel enough to cross the compaction threshold mid-stream;
        the surviving dispatch order must equal the reference's."""
        rng = RngStreams(9).get("test", "compaction")
        times = [float(rng.uniform(0.0, 50.0)) for _ in range(400)]
        doomed = set(int(i) for i in rng.choice(400, size=300,
                                                replace=False))

        def drive(loop):
            fired = []
            handles = [loop.schedule(t, "ev", lambda now, i: fired.append(i),
                                     i) for i, t in enumerate(times)]
            for i in sorted(doomed):
                loop.cancel(handles[i])
            loop.run()
            return fired

        kernel = EventLoop()
        got = drive(kernel)
        want = drive(ReferenceLoop())
        assert got == want
        # The cancel storm really crossed the threshold and swept.
        assert len(doomed) > _COMPACT_MIN_DEAD
        assert kernel._n_dead == 0

    def test_explicit_compact_is_invisible(self):
        """White-box: force _compact() between every mutation batch and
        assert the dispatch sequence still matches the reference."""
        tape = build_tape(7)
        initial, on_fire = tape

        class CompactingLoop(EventLoop):
            def cancel(self, event):
                out = super().cancel(event)
                super()._compact()
                return out

        got = interpret(CompactingLoop(), tape)
        want = interpret(ReferenceLoop(), tape)
        assert got == want
