"""Exactness of the closed-form plan footprints.

The decision-plane fast path stands on one contract: for uniform chunk
sizes, ``Synthesizer.estimate_footprint`` equals
``PlanFootprint.from_plan(build_plan(...))`` integer for integer, for
every synthesis method across the full ``num_chunks`` × query-shape
grid. These tests pin that contract (plus the memoized module-level
estimator and the service-time pricing used by deadline-risk
speculation).
"""

import random

import pytest

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.llm.costs import RooflineCostModel
from repro.llm.gpu import A40, ClusterSpec
from repro.llm.model import MISTRAL_7B_AWQ
from repro.serving.speculation import estimate_plan_seconds
from repro.synthesis import (
    PlanFootprint,
    estimate_footprint,
    make_synthesizer,
)

METHODS = tuple(SynthesisMethod)


def _config(method: SynthesisMethod, k: int, ilen: int) -> RAGConfig:
    if method.uses_intermediate_length:
        return RAGConfig(method, k, ilen)
    return RAGConfig(method, k)


def _materialized(config: RAGConfig, query_tokens: int, chunk_tokens: int,
                  answer_tokens: int):
    synthesizer = make_synthesizer(config.synthesis_method)
    return synthesizer.build_plan(
        query_id="fp-test",
        query_tokens=query_tokens,
        chunk_tokens=[chunk_tokens] * config.num_chunks,
        answer_tokens=answer_tokens,
        config=config,
    )


class TestClosedFormExactness:
    @pytest.mark.parametrize("method", METHODS, ids=str)
    def test_full_num_chunks_grid(self, method):
        """estimate == from_plan(build_plan) for every k in [1, 64]."""
        rng = random.Random(f"footprint-{method}")
        synthesizer = make_synthesizer(method)
        for k in range(1, 65):
            q = rng.randint(1, 200)
            c = rng.randint(1, 2000)
            a = rng.randint(1, 300)
            ilen = rng.randint(1, 400)
            config = _config(method, k, ilen)
            estimated = synthesizer.estimate_footprint(q, c, a, config)
            built = PlanFootprint.from_plan(_materialized(config, q, c, a))
            assert estimated == built, (config, q, c, a)

    @pytest.mark.parametrize("method", METHODS, ids=str)
    def test_random_query_shapes(self, method):
        rng = random.Random(f"shapes-{method}")
        synthesizer = make_synthesizer(method)
        for _ in range(200):
            config = _config(method, rng.randint(1, 64),
                             rng.randint(1, 2048))
            q, c, a = (rng.randint(1, 500), rng.randint(1, 4000),
                       rng.randint(1, 500))
            estimated = synthesizer.estimate_footprint(q, c, a, config)
            plan = _materialized(config, q, c, a)
            # Every scalar the scheduler (or anything else) reads.
            assert estimated.cost_tokens == plan.cost_tokens
            assert estimated.fit_tokens == plan.fit_tokens
            assert estimated.stage_peak_tokens == plan.stage_peak_tokens
            assert estimated.total_prefill_tokens == plan.total_prefill_tokens
            assert estimated.total_output_tokens == plan.total_output_tokens
            assert estimated.n_calls == len(plan.calls)
            assert estimated.n_stages == plan.n_stages

    def test_validation_mirrors_build_plan(self):
        synthesizer = make_synthesizer(SynthesisMethod.STUFF)
        config = RAGConfig(SynthesisMethod.STUFF, 4)
        with pytest.raises(ValueError):
            synthesizer.estimate_footprint(0, 500, 20, config)
        with pytest.raises(ValueError):
            synthesizer.estimate_footprint(30, 0, 20, config)
        with pytest.raises(ValueError):
            synthesizer.estimate_footprint(30, 500, 0, config)
        with pytest.raises(ValueError):
            synthesizer.estimate_footprint(
                30, 500, 20, RAGConfig(SynthesisMethod.MAP_RERANK, 4))


class TestServiceSeconds:
    def test_matches_estimate_plan_seconds(self):
        """Footprint pricing is bit-identical to pricing the plan."""
        cost = RooflineCostModel(MISTRAL_7B_AWQ, ClusterSpec(A40))
        rng = random.Random("service-seconds")
        for method in METHODS:
            for _ in range(50):
                config = _config(method, rng.randint(1, 32),
                                 rng.randint(1, 300))
                q, c, a = (rng.randint(1, 200), rng.randint(1, 1500),
                           rng.randint(1, 200))
                footprint = estimate_footprint(config, q, c, a)
                plan = _materialized(config, q, c, a)
                assert footprint.service_seconds(cost) == \
                    estimate_plan_seconds(plan, cost)


class TestMemoizedEstimator:
    def test_same_shape_returns_cached_object(self):
        config = RAGConfig(SynthesisMethod.MAP_REDUCE, 7, 120)
        first = estimate_footprint(config, 41, 512, 23)
        second = estimate_footprint(config, 41, 512, 23)
        assert first is second

    def test_matches_synthesizer_closed_form(self):
        config = RAGConfig(SynthesisMethod.MAP_RERANK, 9)
        synthesizer = make_synthesizer(SynthesisMethod.MAP_RERANK)
        assert estimate_footprint(config, 33, 700, 19) == \
            synthesizer.estimate_footprint(33, 700, 19, config)


class TestFromPlanGrouping:
    def test_non_uniform_chunks_group_by_shape(self):
        """from_plan compresses identical calls, keeps distinct ones."""
        config = RAGConfig(SynthesisMethod.MAP_RERANK, 4)
        synthesizer = make_synthesizer(SynthesisMethod.MAP_RERANK)
        plan = synthesizer.build_plan(
            query_id="mixed", query_tokens=30,
            chunk_tokens=[500, 500, 700, 500], answer_tokens=20,
            config=config)
        footprint = PlanFootprint.from_plan(plan)
        assert footprint.n_calls == 4
        (stage,) = footprint.stages
        assert len(stage) == 2  # two distinct prompt shapes
        assert sum(n for _, _, n in stage) == 4
        assert footprint.cost_tokens == plan.cost_tokens
        assert footprint.fit_tokens == plan.fit_tokens
