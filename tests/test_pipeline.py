"""Tests for the staged query pipeline: determinism at unbounded
concurrency, queueing under contention, closed-loop clients, and
workload validation."""

import json
from pathlib import Path

import pytest

from repro.baselines import FixedConfigPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data.workload import (
    Arrival,
    poisson_arrivals,
    sequential_arrivals,
)
from repro.evaluation.pipeline import (
    PROFILER_RESOURCE,
    RETRIEVAL_RESOURCE,
    validate_arrivals,
)
from repro.evaluation.runner import ExperimentRunner
from repro.experiments.common import make_metis

STUFF6 = RAGConfig(SynthesisMethod.STUFF, 6)


def fingerprint(result) -> list[tuple]:
    return [
        (r.query_id, r.arrival_time, r.decision_time, r.finish_time,
         r.f1, r.queueing_delay, r.prefill_tokens, r.output_tokens,
         r.replica, r.config)
        for r in result.records
    ]


def make_runner(bundle, engine_config, **kwargs) -> ExperimentRunner:
    return ExperimentRunner(bundle, engine_config, seed=0, **kwargs)


class TestUnboundedEquivalence:
    """Default (unbounded) resources must not perturb the schedule."""

    def test_default_matches_huge_explicit_concurrency(
            self, finsec_bundle, engine_config):
        arrivals = poisson_arrivals(finsec_bundle.queries, 2.0, seed=0)
        base = make_runner(finsec_bundle, engine_config).run(
            make_metis(finsec_bundle), arrivals)
        explicit = make_runner(
            finsec_bundle, engine_config,
            profiler_concurrency=10**6, retrieval_concurrency=10**6,
        ).run(make_metis(finsec_bundle), arrivals)
        assert fingerprint(base) == fingerprint(explicit)
        assert base.makespan == explicit.makespan

    def test_unbounded_run_reports_zero_queue_delay(
            self, finsec_bundle, engine_config):
        arrivals = poisson_arrivals(finsec_bundle.queries, 2.0, seed=0)
        result = make_runner(finsec_bundle, engine_config).run(
            make_metis(finsec_bundle), arrivals)
        assert all(r.profiler_queue_delay == 0.0 for r in result.records)
        assert all(r.retrieval_queue_delay == 0.0 for r in result.records)
        stats = result.resource_stats
        assert stats[PROFILER_RESOURCE].n_queued == 0
        assert stats[RETRIEVAL_RESOURCE].n_queued == 0
        assert stats[PROFILER_RESOURCE].n_requests == len(result.records)


class TestGoldenFingerprint:
    """Regression anchor: the committed fingerprint was generated from
    a schedule verified byte-identical to the pre-``repro.sim``
    closure-based runner (full-run SHA comparison against the PR 1
    HEAD). Any drift in the default event schedule — even one that
    perturbs both unbounded variants equally — fails here."""

    GOLDEN = Path(__file__).parent / "golden" / "pipeline_golden.json"

    def test_default_schedule_matches_committed_fingerprint(self):
        from repro.data import build_dataset
        from repro.experiments.common import default_engine_config

        bundle = build_dataset("finsec", seed=0, n_queries=12)
        arrivals = poisson_arrivals(bundle.queries, 2.0, seed=0)
        result = ExperimentRunner(bundle, default_engine_config(),
                                  seed=0).run(make_metis(bundle), arrivals)
        golden = json.loads(self.GOLDEN.read_text())
        assert repr(result.makespan) == golden["makespan"]
        assert len(result.records) == len(golden["records"])
        for r, g in zip(result.records, golden["records"]):
            got = {
                "query_id": r.query_id,
                "arrival_time": repr(r.arrival_time),
                "decision_time": repr(r.decision_time),
                "finish_time": repr(r.finish_time),
                "f1": repr(r.f1),
                "queueing_delay": repr(r.queueing_delay),
                "prefill_tokens": r.prefill_tokens,
                "output_tokens": r.output_tokens,
                "replica": r.replica,
                "config": r.config.label(),
            }
            assert got == g, r.query_id


class TestProfilerContention:
    """Acceptance: finite profiler_concurrency queues under saturation."""

    def test_saturating_workload_builds_profiler_queue(
            self, finsec_bundle, engine_config):
        # One profiler slot serves ~6.8 calls/s; 10 qps saturates it.
        arrivals = poisson_arrivals(finsec_bundle.queries, 10.0, seed=0)
        contended = make_runner(
            finsec_bundle, engine_config, profiler_concurrency=1,
        ).run(make_metis(finsec_bundle), arrivals)
        unbounded = make_runner(finsec_bundle, engine_config).run(
            make_metis(finsec_bundle), arrivals)

        stats = contended.resource_stats[PROFILER_RESOURCE]
        assert stats.n_queued > 0
        assert stats.total_queue_delay > 0.0
        assert stats.peak_queue_len >= 2
        assert stats.peak_in_service == 1
        assert any(r.profiler_queue_delay > 0 for r in contended.records)
        # Waiting for the profiler pushes decisions later. (Makespans
        # are not comparable: delayed decisions observe different KV
        # state and may legitimately pick cheaper configurations.)
        assert contended.mean_profiler_queue_delay > 0.0
        # The wait shows up in the per-query overhead fraction (Fig 18).
        assert (contended.mean_profiler_fraction
                > unbounded.mean_profiler_fraction)

    def test_contended_timestamps_remain_consistent(
            self, finsec_bundle, engine_config):
        arrivals = poisson_arrivals(finsec_bundle.queries, 10.0, seed=0)
        result = make_runner(
            finsec_bundle, engine_config, profiler_concurrency=1,
        ).run(make_metis(finsec_bundle), arrivals)
        assert len(result.records) == len(finsec_bundle.queries)
        for r in result.records:
            # decision happens after the queued wait + the service time
            assert r.decision_time >= (
                r.arrival_time + r.profiler_queue_delay
                + r.profiler_seconds) - 1e-9
            assert r.arrival_time <= r.decision_time <= r.finish_time

    def test_retrieval_contention_queues(self, finsec_bundle, engine_config):
        # Retrieval holds a slot for 4 ms; back-to-back arrivals at
        # 500 qps (2 ms apart) through one slot must queue.
        arrivals = poisson_arrivals(finsec_bundle.queries, 500.0, seed=0)
        result = make_runner(
            finsec_bundle, engine_config, retrieval_concurrency=1,
        ).run(FixedConfigPolicy(STUFF6), arrivals)
        stats = result.resource_stats[RETRIEVAL_RESOURCE]
        assert stats.n_queued > 0
        assert any(r.retrieval_queue_delay > 0 for r in result.records)

    def test_profiler_contention_is_deterministic(
            self, finsec_bundle, engine_config):
        arrivals = poisson_arrivals(finsec_bundle.queries, 10.0, seed=0)

        def run_once():
            return make_runner(
                finsec_bundle, engine_config, profiler_concurrency=2,
            ).run(make_metis(finsec_bundle), arrivals)

        assert fingerprint(run_once()) == fingerprint(run_once())

    def test_saturated_profiler_batches_queued_calls(
            self, finsec_bundle, engine_config):
        """Queued profile requests coalesce into one amortized API call
        per freed slot: fewer ledger calls and less profiler busy time
        than the per-query holds would sum to — while the uncontended
        run keeps exactly one charged call per query."""
        arrivals = poisson_arrivals(finsec_bundle.queries, 10.0, seed=0)
        contended = make_runner(
            finsec_bundle, engine_config, profiler_concurrency=1,
        ).run(make_metis(finsec_bundle), arrivals)
        unbounded = make_runner(finsec_bundle, engine_config).run(
            make_metis(finsec_bundle), arrivals)
        # ProfileStage is the only n_api_calls writer, so the ledger
        # counts profiler calls exactly.
        assert unbounded.ledger.n_api_calls == len(unbounded.records)
        assert contended.ledger.n_api_calls < len(contended.records)
        stats = contended.resource_stats[PROFILER_RESOURCE]
        requested = sum(r.profiler_seconds for r in contended.records)
        assert stats.busy_seconds < requested - 1e-9
        # A batched call charges its largest member once, not the sum.
        assert (contended.ledger.api_dollars
                < unbounded.ledger.api_dollars)

    def test_invalid_concurrency_rejected(self, finsec_bundle,
                                          engine_config):
        with pytest.raises(ValueError):
            make_runner(finsec_bundle, engine_config,
                        profiler_concurrency=0)
        with pytest.raises(ValueError):
            make_runner(finsec_bundle, engine_config,
                        retrieval_concurrency=-1)


class TestClosedLoopClients:
    def test_one_client_matches_plain_sequential(
            self, finsec_bundle, engine_config):
        arrivals = sequential_arrivals(finsec_bundle.queries[:10])
        policy = FixedConfigPolicy(STUFF6)
        base = make_runner(finsec_bundle, engine_config).run(
            policy, arrivals)
        explicit = make_runner(finsec_bundle, engine_config).run(
            FixedConfigPolicy(STUFF6), arrivals, closed_loop_clients=1)
        assert fingerprint(base) == fingerprint(explicit)

    @pytest.mark.parametrize("k", [2, 3])
    def test_outstanding_queries_bounded_by_k(
            self, k, finsec_bundle, engine_config):
        arrivals = sequential_arrivals(finsec_bundle.queries[:12])
        result = make_runner(finsec_bundle, engine_config).run(
            FixedConfigPolicy(STUFF6), arrivals, closed_loop_clients=k)
        assert len(result.records) == 12
        # Sweep in-flight intervals: never more than K outstanding.
        events = sorted(
            [(round(r.arrival_time, 7), 1) for r in result.records]
            + [(round(r.finish_time, 7), -1) for r in result.records],
            key=lambda p: (p[0], p[1]),
        )
        live = peak = 0
        for _, delta in events:
            live += delta
            peak = max(peak, live)
        assert peak <= k
        assert peak >= 2  # K clients genuinely overlap

    def test_more_clients_finish_no_later(self, finsec_bundle,
                                          engine_config):
        arrivals = sequential_arrivals(finsec_bundle.queries[:12])

        def makespan(k: int) -> float:
            return make_runner(finsec_bundle, engine_config).run(
                FixedConfigPolicy(STUFF6), arrivals,
                closed_loop_clients=k).makespan

        assert makespan(3) <= makespan(1) + 1e-9

    def test_clients_beyond_workload_size_ok(self, finsec_bundle,
                                             engine_config):
        arrivals = sequential_arrivals(finsec_bundle.queries[:4])
        result = make_runner(finsec_bundle, engine_config).run(
            FixedConfigPolicy(STUFF6), arrivals, closed_loop_clients=99)
        assert len(result.records) == 4

    def test_clients_rejected_for_open_loop(self, finsec_bundle,
                                            engine_config):
        arrivals = poisson_arrivals(finsec_bundle.queries[:4], 1.0, seed=0)
        with pytest.raises(ValueError, match="closed-loop"):
            make_runner(finsec_bundle, engine_config).run(
                FixedConfigPolicy(STUFF6), arrivals, closed_loop_clients=2)

    def test_zero_clients_rejected(self, finsec_bundle, engine_config):
        arrivals = sequential_arrivals(finsec_bundle.queries[:4])
        with pytest.raises(ValueError):
            make_runner(finsec_bundle, engine_config).run(
                FixedConfigPolicy(STUFF6), arrivals, closed_loop_clients=0)


class TestWorkloadValidation:
    """The pre-refactor check only fired when arrival 0 was open-loop;
    a closed-loop head followed by timed arrivals slipped through."""

    def test_open_then_closed_rejected(self, finsec_bundle, engine_config):
        queries = finsec_bundle.queries[:3]
        arrivals = [Arrival(queries[0], 0.5), Arrival(queries[1], None),
                    Arrival(queries[2], 1.0)]
        with pytest.raises(ValueError, match="mixed open/closed-loop"):
            make_runner(finsec_bundle, engine_config).run(
                FixedConfigPolicy(STUFF6), arrivals)

    def test_closed_then_open_rejected(self, finsec_bundle, engine_config):
        """The case the old first-arrival-only check silently mis-ran."""
        queries = finsec_bundle.queries[:2]
        arrivals = [Arrival(queries[0], None), Arrival(queries[1], 0.5)]
        with pytest.raises(ValueError, match="mixed open/closed-loop"):
            make_runner(finsec_bundle, engine_config).run(
                FixedConfigPolicy(STUFF6), arrivals)

    def test_error_names_offending_index(self, finsec_bundle):
        queries = finsec_bundle.queries[:3]
        arrivals = [Arrival(q, None) for q in queries[:2]]
        arrivals.append(Arrival(queries[2], 7.0))
        with pytest.raises(ValueError, match="arrival 2"):
            validate_arrivals(arrivals)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty workload"):
            validate_arrivals([])

    def test_valid_workloads_classified(self, finsec_bundle):
        queries = finsec_bundle.queries[:3]
        assert validate_arrivals(sequential_arrivals(queries)) is True
        assert validate_arrivals(
            poisson_arrivals(queries, 1.0, seed=0)) is False
