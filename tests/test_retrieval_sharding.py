"""Pipeline-level tests for scatter-gather retrieval: K=1 equivalence,
per-shard contention, the rerank stage, runner fail-fast validation,
and per-shard reporting."""

import pytest

from repro.baselines import FixedConfigPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data.workload import poisson_arrivals
from repro.evaluation.pipeline import (
    PROFILER_RESOURCE,
    RERANK_RESOURCE,
    RETRIEVAL_RESOURCE,
    shard_resource_name,
)
from repro.evaluation.reports import retrieval_shard_rows
from repro.evaluation.runner import ExperimentRunner
from repro.retrieval.rerank import ExactReranker

STUFF6 = RAGConfig(SynthesisMethod.STUFF, 6)


def fingerprint(result) -> list[tuple]:
    return [
        (r.query_id, r.arrival_time, r.decision_time, r.finish_time,
         r.f1, r.queueing_delay, r.prefill_tokens, r.output_tokens,
         r.replica, r.config)
        for r in result.records
    ]


def run_sharded(bundle, engine_config, arrivals=None, **kwargs):
    arrivals = arrivals or poisson_arrivals(bundle.queries, 2.0, seed=0)
    runner = ExperimentRunner(bundle, engine_config, seed=0, **kwargs)
    return runner.run(FixedConfigPolicy(STUFF6), arrivals)


class TestSingleShardEquivalence:
    """retrieval_shards=1 must be the pre-refactor path, byte for byte
    (the committed golden fingerprint in test_pipeline.py pins the
    absolute schedule; these pin the explicit-flag spellings)."""

    def test_explicit_one_shard_matches_default(self, finsec_bundle,
                                                engine_config):
        base = run_sharded(finsec_bundle, engine_config)
        explicit = run_sharded(finsec_bundle, engine_config,
                               retrieval_shards=1)
        assert fingerprint(base) == fingerprint(explicit)
        assert base.makespan == explicit.makespan

    def test_one_shard_keeps_legacy_resource_name(self, finsec_bundle,
                                                  engine_config):
        result = run_sharded(finsec_bundle, engine_config,
                             retrieval_shards=1)
        assert set(result.resource_stats) == {PROFILER_RESOURCE,
                                              RETRIEVAL_RESOURCE}
        assert result.n_retrieval_shards == 1
        assert result.reranker is None

    def test_one_shard_reuses_bundle_store(self, finsec_bundle,
                                           engine_config):
        runner = ExperimentRunner(finsec_bundle, engine_config,
                                  retrieval_shards=1)
        assert runner.store is finsec_bundle.store


class TestShardedOutcomes:
    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_same_answers_any_k(self, n_shards, finsec_bundle,
                                engine_config):
        """Sharding is a performance knob: with an exact index the
        retrieved sets — and therefore every F1 — must not move."""
        base = run_sharded(finsec_bundle, engine_config)
        sharded = run_sharded(finsec_bundle, engine_config,
                              retrieval_shards=n_shards)
        assert sharded.n_retrieval_shards == n_shards
        by_id = {r.query_id: r for r in base.records}
        for record in sharded.records:
            want = by_id[record.query_id]
            assert record.f1 == want.f1
            assert record.n_chunks_retrieved == want.n_chunks_retrieved

    def test_per_shard_resources_reported(self, finsec_bundle,
                                          engine_config):
        result = run_sharded(finsec_bundle, engine_config,
                             retrieval_shards=4)
        names = {shard_resource_name(s, 4) for s in range(4)}
        assert names == {f"retrieval/shard{s}" for s in range(4)}
        assert names <= set(result.resource_stats)
        assert RETRIEVAL_RESOURCE not in result.resource_stats
        for name in names:
            assert result.resource_stats[name].n_requests == \
                len(result.records)

    def test_sharded_retrieval_shrinks_work_but_gathers(self, finsec_bundle,
                                                        engine_config):
        base = run_sharded(finsec_bundle, engine_config)
        sharded = run_sharded(finsec_bundle, engine_config,
                              retrieval_shards=4)
        # Per-shard executor work shrinks (each shard scans 1/K of the
        # corpus); the merge picks up a small per-candidate cost.
        base_busy = base.resource_stats[RETRIEVAL_RESOURCE].busy_seconds
        worst_shard = max(
            sharded.resource_stats[f"retrieval/shard{s}"].busy_seconds
            for s in range(4))
        assert worst_shard < base_busy
        assert base.mean_gather_seconds == 0.0
        assert sharded.mean_gather_seconds > 0.0
        assert all(r.gather_seconds > 0 for r in sharded.records)
        assert all(r.retrieval_seconds > 0 for r in sharded.records)

    def test_shard_contention_queues_independently(self, finsec_bundle,
                                                   engine_config):
        arrivals = poisson_arrivals(finsec_bundle.queries, 500.0, seed=0)
        result = run_sharded(finsec_bundle, engine_config,
                             arrivals=arrivals,
                             retrieval_shards=2, shard_concurrency=1)
        stats = [result.resource_stats[f"retrieval/shard{s}"]
                 for s in range(2)]
        assert all(s.n_queued > 0 for s in stats)
        assert any(r.retrieval_queue_delay > 0 for r in result.records)
        # The per-query wait is the max over shards, so it is at least
        # each record's own shards' mean.
        assert result.records

    def test_contended_sharded_run_is_deterministic(self, finsec_bundle,
                                                    engine_config):
        arrivals = poisson_arrivals(finsec_bundle.queries, 500.0, seed=0)

        def run_once():
            return run_sharded(finsec_bundle, engine_config,
                               arrivals=arrivals, retrieval_shards=4,
                               shard_concurrency=[1, 2, 1, 2])

        assert fingerprint(run_once()) == fingerprint(run_once())


class TestRerankStage:
    def test_exact_reranker_is_quality_neutral_on_flat(self, finsec_bundle,
                                                       engine_config):
        base = run_sharded(finsec_bundle, engine_config,
                           retrieval_shards=2)
        reranked = run_sharded(finsec_bundle, engine_config,
                               retrieval_shards=2, reranker="exact")
        by_id = {r.query_id: r for r in base.records}
        for record in reranked.records:
            assert record.f1 == by_id[record.query_id].f1

    def test_rerank_cost_and_stats_surface(self, finsec_bundle,
                                           engine_config):
        result = run_sharded(finsec_bundle, engine_config,
                             retrieval_shards=2, reranker="exact")
        assert result.reranker == "exact"
        assert RERANK_RESOURCE in result.resource_stats
        assert result.resource_stats[RERANK_RESOURCE].n_requests == \
            len(result.records)
        assert all(r.rerank_seconds > 0 for r in result.records)

    def test_custom_reranker_instance(self, finsec_bundle, engine_config):
        reranker = ExactReranker(per_candidate_seconds=1e-3,
                                 fetch_multiplier=2)
        result = run_sharded(finsec_bundle, engine_config,
                             retrieval_shards=2, reranker=reranker)
        # hold = per_candidate * pool; pool = sum_s min(2k, shard)
        assert all(r.rerank_seconds >= 1e-3 * 6 for r in result.records)

    def test_reranker_on_ivf_runs(self, finsec_bundle, engine_config):
        result = run_sharded(finsec_bundle, engine_config,
                             retrieval_shards=4, index="ivf",
                             reranker="exact")
        assert len(result.records) == len(finsec_bundle.queries)
        assert all(r.n_chunks_retrieved > 0 for r in result.records)


class TestRunnerValidation:
    def test_bad_shard_count(self, finsec_bundle, engine_config):
        for bad in (0, -2, 1.5):
            with pytest.raises(ValueError, match="retrieval_shards"):
                ExperimentRunner(finsec_bundle, engine_config,
                                 retrieval_shards=bad)

    def test_shard_concurrency_length_mismatch(self, finsec_bundle,
                                               engine_config):
        with pytest.raises(ValueError, match="3 entries.*retrieval_shards "
                                             "is 2"):
            ExperimentRunner(finsec_bundle, engine_config,
                             retrieval_shards=2,
                             shard_concurrency=[1, 2, 3])

    def test_shard_concurrency_bad_entry(self, finsec_bundle,
                                         engine_config):
        with pytest.raises(ValueError, match=r"shard_concurrency\[1\]"):
            ExperimentRunner(finsec_bundle, engine_config,
                             retrieval_shards=2,
                             shard_concurrency=[1, 0])

    def test_retrieval_concurrency_conflicts_with_shards(
            self, finsec_bundle, engine_config):
        with pytest.raises(ValueError, match="retrieval_concurrency"):
            ExperimentRunner(finsec_bundle, engine_config,
                             retrieval_shards=2, retrieval_concurrency=4)

    def test_pipeline_rejects_concurrency_on_sharded_store(
            self, finsec_bundle, engine_config):
        """Direct QueryPipeline construction gets the same fail-fast as
        the runner path — no silently unbounded shards."""
        from repro.evaluation.pipeline import QueryPipeline
        from repro.llm.generation import SimulatedGenerator
        from repro.llm.quality import QualityModel
        from repro.serving.engine import ServingEngine

        with pytest.raises(ValueError, match="2 shards"):
            QueryPipeline(
                bundle=finsec_bundle,
                policy=FixedConfigPolicy(STUFF6),
                engine=ServingEngine(engine_config),
                generator=SimulatedGenerator(
                    quality=QualityModel(finsec_bundle.quality_params),
                    root_seed=0),
                retrieval_concurrency=2,
                store=finsec_bundle.store.reshard(2),
            )

    def test_retrieval_concurrency_conflicts_with_shard_concurrency(
            self, finsec_bundle, engine_config):
        with pytest.raises(ValueError, match="not both"):
            ExperimentRunner(finsec_bundle, engine_config,
                             retrieval_concurrency=4, shard_concurrency=2)

    def test_unknown_index_and_reranker(self, finsec_bundle,
                                        engine_config):
        with pytest.raises(ValueError, match="unknown index factory"):
            ExperimentRunner(finsec_bundle, engine_config, index="hnsw")
        with pytest.raises(ValueError, match="unknown reranker"):
            ExperimentRunner(finsec_bundle, engine_config,
                             reranker="cross-encoder")

    def test_broadcast_single_int(self, finsec_bundle, engine_config):
        runner = ExperimentRunner(finsec_bundle, engine_config,
                                  retrieval_shards=3, shard_concurrency=2)
        assert runner.shard_concurrency == [2, 2, 2]


class TestRetrievalShardRows:
    def test_rows_cover_shards_and_reranker(self, finsec_bundle,
                                            engine_config):
        result = run_sharded(finsec_bundle, engine_config,
                             retrieval_shards=4, shard_concurrency=1,
                             reranker="exact")
        rows = retrieval_shard_rows(result)
        shards = [r["shard"] for r in rows if r["resource"] != "reranker"]
        assert shards == [0, 1, 2, 3]
        reranker_rows = [r for r in rows if r["resource"] == "reranker"]
        assert len(reranker_rows) == 1
        assert reranker_rows[0]["shard"] == "-"
        assert all(r["requests"] == len(result.records) for r in rows)

    def test_unsharded_row_shape(self, finsec_bundle, engine_config):
        result = run_sharded(finsec_bundle, engine_config)
        rows = retrieval_shard_rows(result)
        assert len(rows) == 1
        assert rows[0]["resource"] == RETRIEVAL_RESOURCE
        assert rows[0]["shard"] == "-"
