"""Unit tests for the dataset generator internals."""

import dataclasses

import pytest

from repro.data.datasets import get_spec
from repro.data.generator import DatasetSpec, generate_dataset
from repro.data.vocab import (
    FILLER_WORDS,
    VALUE_WORDS,
    make_entity_name,
    make_filler_sentence,
    make_value_phrase,
)
from repro.util.rng import RngStreams


@pytest.fixture()
def rng():
    return RngStreams(0).get("test")


class TestVocab:
    def test_entity_names_are_short_tokens(self, rng):
        for kind in ("corp", "place", "person", "team"):
            name = make_entity_name(rng, kind)
            first = name.split()[0]
            assert len(first) <= 6  # stays a single tokenizer token

    def test_entity_kinds_have_distinct_suffixes(self, rng):
        place = make_entity_name(rng, "place")
        assert place.split()[-1] in ("county", "city", "valley", "district")

    def test_value_phrase_length(self, rng):
        assert len(make_value_phrase(rng, 4).split()) == 4

    def test_value_phrase_beyond_pool_pads(self, rng):
        n = len(VALUE_WORDS) + 5
        phrase = make_value_phrase(rng, n)
        assert len(phrase.split()) == n
        assert len(set(phrase.split())) == n  # still no duplicates

    def test_value_phrase_rejects_zero(self, rng):
        with pytest.raises(ValueError):
            make_value_phrase(rng, 0)

    def test_filler_topic_rate_zero_uses_only_filler(self, rng):
        sentence = make_filler_sentence(rng, ("zzztopic",), topic_rate=0.0)
        assert "zzztopic" not in sentence

    def test_filler_topic_rate_one_uses_only_topic(self, rng):
        sentence = make_filler_sentence(rng, ("zzztopic",), topic_rate=1.0)
        words = sentence.rstrip(".").lower().split()
        assert all(w == "zzztopic" for w in words)

    def test_filler_vocab_disjoint_from_values(self):
        assert not set(FILLER_WORDS) & set(VALUE_WORDS)


class TestDatasetSpecValidation:
    def test_pieces_probs_must_sum_to_one(self):
        spec = get_spec("squad")
        with pytest.raises(ValueError, match="sum to 1"):
            dataclasses.replace(spec, pieces_probs=((1, 0.5), (2, 0.4)))

    def test_needs_enough_docs(self):
        spec = get_spec("squad")
        with pytest.raises(ValueError, match="4 documents"):
            dataclasses.replace(spec, n_docs=2)

    def test_needs_queries(self):
        spec = get_spec("squad")
        with pytest.raises(ValueError, match="1 query"):
            dataclasses.replace(spec, n_queries=0)


class TestGeneratedStructure:
    @pytest.fixture(scope="class")
    def tiny(self):
        spec = dataclasses.replace(get_spec("musique"), n_docs=8,
                                   n_queries=15)
        return generate_dataset(spec, seed=1)

    def test_doc_lengths_in_range(self, tiny):
        lo, hi = get_spec("musique").doc_token_range
        for n in tiny.doc_tokens.values():
            assert lo * 0.8 <= n <= hi * 1.2

    def test_cross_doc_queries_span_documents(self, tiny):
        multi = [q for q in tiny.queries
                 if q.truth.pieces_of_information >= 2]
        assert multi, "expected some multi-piece queries"
        spanning = 0
        for q in multi:
            docs = {tiny.facts[fid].doc_id
                    for fid in q.truth.required_fact_ids}
            if len(docs) >= 2:
                spanning += 1
        assert spanning / len(multi) > 0.7

    def test_summary_range_tracks_verbosity(self, tiny):
        for q in tiny.queries:
            lo, hi = q.truth.summary_range
            max_verbosity = max(tiny.facts[fid].verbosity
                                for fid in q.truth.required_fact_ids)
            assert hi >= max_verbosity  # budget can hold the worst fact

    def test_answer_estimate_close_to_truth(self, tiny):
        for q in tiny.queries:
            truth_len = (len(q.truth.answer_template_tokens)
                         + sum(len(tiny.facts[fid].value_tokens)
                               for fid in q.truth.required_fact_ids))
            assert q.answer_tokens_estimate >= min(truth_len, 4)

    def test_same_doc_queries_prefer_distinct_chunks(self):
        spec = dataclasses.replace(get_spec("finsec"), n_docs=8,
                                   n_queries=20)
        bundle = generate_dataset(spec, seed=2)
        fact_chunk = {fid: cid for cid, fids in bundle.chunk_facts.items()
                      for fid in fids}
        for q in bundle.queries:
            if q.truth.pieces_of_information < 3:
                continue
            chunks = {fact_chunk[fid] for fid in q.truth.required_fact_ids}
            # At least two distinct chunks involved for 3+-piece queries.
            assert len(chunks) >= 2
