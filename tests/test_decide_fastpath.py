"""The decision-plane fast path changes no decision.

``JointScheduler.choose`` scores closed-form footprints with numpy;
``JointScheduler.choose_reference`` is the original plan-materialising
implementation, kept verbatim. This suite races both on every decision
of a real METIS run (the same ``(pruned, view)`` pairs, at the same
instants, under load-driven memory pressure) and on synthetic corner
cases, pinning that ``(config, fell_back, n_candidates, n_fitting)``
and the footprints agree everywhere.
"""

import pytest

from repro.config.knobs import SynthesisMethod
from repro.config.space import PrunedSpace
from repro.core.policy import SchedulingView
from repro.core.scheduler import JointScheduler
from repro.experiments.common import make_metis, run_policy


def _decision_key(decision):
    return (decision.config, decision.fell_back, decision.n_candidates,
            decision.n_fitting)


class RecordingScheduler(JointScheduler):
    """Runs the fast path, replays the reference, records agreement."""

    def __init__(self, memory_buffer_frac: float = 0.02) -> None:
        super().__init__(memory_buffer_frac)
        self.tape = []

    def choose(self, pruned, view):
        fast = super().choose(pruned, view)
        reference = self.choose_reference(pruned, view)
        self.tape.append((_decision_key(fast), _decision_key(reference),
                          fast.footprint, reference.footprint))
        return fast


class TestMetisRunEquivalence:
    def test_per_query_decisions_identical(self, finsec_bundle):
        """Every JointDecision of a METIS run matches the reference."""
        policy = make_metis(finsec_bundle)
        scheduler = RecordingScheduler(
            policy.scheduler.memory_buffer_frac)
        policy.scheduler = scheduler
        run_policy(finsec_bundle, policy, rate_qps=1.4, seed=0)
        assert len(scheduler.tape) >= len(finsec_bundle.queries)
        for fast_key, ref_key, fast_fp, ref_fp in scheduler.tape:
            assert fast_key == ref_key
            assert fast_fp == ref_fp
        # The run must exercise real adaptation, not one repeated pick.
        assert len({k[0] for k, _, _, _ in scheduler.tape}) > 1


def _view(available_kv_bytes: float) -> SchedulingView:
    return SchedulingView(
        now=0.0,
        free_kv_bytes=available_kv_bytes,
        available_kv_bytes=available_kv_bytes,
        kv_bytes_per_token=131_072.0,
        chunk_tokens=500,
        query_tokens=30,
        answer_tokens=20,
    )


SPACES = [
    PrunedSpace((SynthesisMethod.STUFF,), (2, 6)),
    PrunedSpace((SynthesisMethod.MAP_RERANK, SynthesisMethod.STUFF), (1, 8)),
    PrunedSpace((SynthesisMethod.STUFF, SynthesisMethod.MAP_REDUCE), (3, 10),
                (40, 180)),
    PrunedSpace(tuple(SynthesisMethod), (1, 12), (30, 200), ilen_steps=6),
]

# Memory ladder from "everything fits" through unit-fit to fallback.
MEMORY_LEVELS = [1e12, 5e9, 2e9, 1e9, 5e8, 2e8, 1e8, 5e7, 1e7, 1e6, 0.0]


class TestSyntheticGridEquivalence:
    @pytest.mark.parametrize("space_idx", range(len(SPACES)))
    def test_all_memory_regimes(self, space_idx):
        scheduler = JointScheduler()
        pruned = SPACES[space_idx]
        for available in MEMORY_LEVELS:
            view = _view(available)
            fast = scheduler.choose(pruned, view)
            reference = scheduler.choose_reference(pruned, view)
            assert _decision_key(fast) == _decision_key(reference), available
            assert fast.footprint == reference.footprint

    def test_fallback_footprint_matches_reference(self):
        scheduler = JointScheduler()
        pruned = PrunedSpace((SynthesisMethod.STUFF,), (2, 4))
        view = _view(0.0)
        fast = scheduler.choose(pruned, view)
        reference = scheduler.choose_reference(pruned, view)
        assert fast.fell_back and reference.fell_back
        assert fast.footprint == reference.footprint
