"""Cross-policy properties of the workload runner."""

import pytest

from repro.baselines import FixedConfigPolicy, ParrotPolicy
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data.workload import poisson_arrivals
from repro.evaluation.runner import ExperimentRunner
from repro.experiments.common import (
    default_engine_config,
    make_adaptive_rag,
    make_median,
    make_metis,
)


@pytest.fixture(scope="module")
def musique_small():
    from repro.data import build_dataset

    return build_dataset("musique", n_queries=20)


def all_policies(bundle):
    return [
        make_metis(bundle),
        make_adaptive_rag(bundle),
        make_median(bundle),
        make_median(bundle, app_aware=True),
        FixedConfigPolicy(RAGConfig(SynthesisMethod.STUFF, 6)),
        ParrotPolicy(RAGConfig(SynthesisMethod.MAP_REDUCE, 6, 80)),
        FixedConfigPolicy(RAGConfig(SynthesisMethod.MAP_RERANK, 4)),
    ]


class TestConservationAcrossPolicies:
    def test_every_policy_serves_every_query(self, musique_small):
        arrivals = poisson_arrivals(musique_small.queries, 1.5, seed=0)
        expected_ids = {q.query_id for q in musique_small.queries}
        for policy in all_policies(musique_small):
            runner = ExperimentRunner(musique_small,
                                      default_engine_config(), seed=0)
            result = runner.run(policy, arrivals)
            assert {r.query_id for r in result.records} == expected_ids, \
                policy.name

    def test_records_internally_consistent(self, musique_small):
        arrivals = poisson_arrivals(musique_small.queries, 1.5, seed=0)
        for policy in all_policies(musique_small):
            runner = ExperimentRunner(musique_small,
                                      default_engine_config(), seed=0)
            result = runner.run(policy, arrivals)
            for r in result.records:
                assert 0.0 <= r.f1 <= 1.0
                assert r.e2e_delay > 0
                assert r.queueing_delay >= -1e-9
                assert r.prefill_tokens > 0
                assert r.output_tokens > 0
                assert 1 <= r.n_chunks_retrieved <= 35
                assert r.finish_time <= result.makespan + 1e-9

    def test_makespan_covers_all_finishes(self, musique_small):
        arrivals = poisson_arrivals(musique_small.queries, 1.5, seed=0)
        runner = ExperimentRunner(musique_small, default_engine_config(),
                                  seed=0)
        result = runner.run(make_metis(musique_small), arrivals)
        assert result.makespan == pytest.approx(
            max(r.finish_time for r in result.records)
        )


class TestSeedSensitivity:
    def test_same_seed_identical(self, musique_small):
        arrivals = poisson_arrivals(musique_small.queries, 1.5, seed=0)

        def run_once():
            runner = ExperimentRunner(musique_small,
                                      default_engine_config(), seed=3)
            return runner.run(make_metis(musique_small, seed=3), arrivals)

        a, b = run_once(), run_once()
        assert [r.f1 for r in a.records] == [r.f1 for r in b.records]
        assert a.makespan == b.makespan

    def test_different_generation_seed_changes_f1_not_delay(
            self, musique_small):
        arrivals = poisson_arrivals(musique_small.queries, 1.5, seed=0)
        policy_config = RAGConfig(SynthesisMethod.STUFF, 6)
        r1 = ExperimentRunner(musique_small, default_engine_config(),
                              seed=1).run(FixedConfigPolicy(policy_config),
                                          arrivals)
        r2 = ExperimentRunner(musique_small, default_engine_config(),
                              seed=2).run(FixedConfigPolicy(policy_config),
                                          arrivals)
        # Same scheduling (fixed config, same arrivals) → same timing;
        # different generation sampling → different F1 values.
        assert r1.makespan == pytest.approx(r2.makespan)
        assert [r.f1 for r in r1.records] != [r.f1 for r in r2.records]
