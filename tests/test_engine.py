"""Unit tests for the continuous-batching serving engine."""

import dataclasses

import pytest

from repro.llm import A40, ClusterSpec, MISTRAL_7B_AWQ
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.request import InferenceRequest, RequestPhase
from repro.util.units import GB


def make_engine(**overrides) -> ServingEngine:
    config = EngineConfig(model=MISTRAL_7B_AWQ, cluster=ClusterSpec(A40),
                          kv_pool_cap_bytes=2 * GB)
    return ServingEngine(dataclasses.replace(config, **overrides))


def req(prompt=1000, out=10, app="q", stage=0, t=0.0, cb=None):
    return InferenceRequest(prompt_tokens=prompt, output_tokens=out,
                            arrival_time=t, app_id=app, stage=stage,
                            on_finish=cb)


class TestSubmission:
    def test_submit_queues(self):
        eng = make_engine()
        r = eng.submit(req())
        assert r in eng.waiting
        assert eng.has_work()

    def test_rejects_over_context(self):
        eng = make_engine()
        with pytest.raises(ValueError, match="supports"):
            eng.submit(req(prompt=40_000))

    def test_rejects_over_pool(self):
        eng = make_engine(kv_pool_cap_bytes=int(0.2 * GB))  # ~1.6k tokens
        with pytest.raises(ValueError, match="KV pool"):
            eng.submit(req(prompt=10_000))

    def test_rejects_resubmission(self):
        eng = make_engine()
        r = eng.submit(req())
        eng.run_until_idle()
        with pytest.raises(ValueError, match="already"):
            eng.submit(r)


class TestExecution:
    def test_single_request_lifecycle(self):
        done = []
        eng = make_engine()
        eng.submit(req(prompt=3000, out=5, cb=lambda r, t: done.append(t)))
        n = eng.run_until_idle()
        assert n >= 2  # chunked prefill (2048 budget) + decode steps
        assert len(done) == 1
        assert done[0] == eng.now
        assert not eng.has_work()

    def test_time_advances_monotonically(self):
        eng = make_engine()
        for i in range(4):
            eng.submit(req(prompt=2000, out=8, app=f"q{i}"))
        last = 0.0
        while eng.has_work():
            info = eng.step()
            assert info.start >= 0
            assert info.end >= last
            last = info.end

    def test_decode_takes_one_step_per_token(self):
        eng = make_engine()
        eng.submit(req(prompt=100, out=5))
        # Prefill (1 step, also yields token 1) + 4 decode steps.
        assert eng.run_until_idle() == 5

    def test_request_timestamps_recorded(self):
        eng = make_engine()
        r = eng.submit(req(prompt=3000, out=3))
        eng.run_until_idle()
        assert r.phase is RequestPhase.FINISHED
        assert r.admitted_time is not None
        assert r.prefill_done_time is not None
        assert r.finish_time is not None
        assert (r.admitted_time <= r.prefill_done_time <= r.finish_time)

    def test_blocks_freed_after_completion(self):
        eng = make_engine()
        eng.submit(req())
        eng.run_until_idle()
        assert eng.blocks.free_blocks == eng.blocks.n_blocks

    def test_step_on_idle_engine_raises(self):
        eng = make_engine()
        with pytest.raises(RuntimeError, match="idle"):
            eng.step()

    def test_advance_to_moves_clock_forward_only(self):
        eng = make_engine()
        eng.advance_to(5.0)
        assert eng.now == 5.0
        eng.advance_to(2.0)
        assert eng.now == 5.0


class TestContinuousBatching:
    def test_later_arrivals_join_running_batch(self):
        eng = make_engine()
        eng.submit(req(prompt=8000, out=30, app="big"))
        eng.step()  # big request admitted, prefilling
        eng.submit(req(prompt=500, out=3, app="small"))
        info = eng.step()
        assert any(r.app_id == "small" for r in info.admitted)

    def test_memory_admission_blocks_head_of_line(self):
        # Pool is ~16k tokens; first request takes most of it, second
        # cannot be admitted until the first finishes.
        eng = make_engine()
        eng.submit(req(prompt=14_000, out=4, app="hog"))
        eng.step()
        blocked = eng.submit(req(prompt=14_000, out=4, app="blocked"))
        eng.step()
        assert blocked.phase is RequestPhase.WAITING
        assert eng.stats.admission_stalls > 0
        eng.run_until_idle()
        assert blocked.phase is RequestPhase.FINISHED

    def test_available_kv_accounts_for_waiting(self):
        eng = make_engine()
        free_before = eng.available_kv_bytes()
        eng.submit(req(prompt=10_000, out=10))
        assert eng.available_kv_bytes() < free_before


class TestChunkedPrefill:
    def test_chunked_splits_long_prompt(self):
        eng = make_engine(max_batched_prefill_tokens=1024)
        eng.submit(req(prompt=4096, out=1))
        info = eng.step()
        assert info.prefill_tokens == 1024

    def test_unchunked_runs_whole_prompt(self):
        eng = make_engine(chunked_prefill=False,
                          max_batched_prefill_tokens=1024)
        eng.submit(req(prompt=4096, out=1))
        info = eng.step()
        assert info.prefill_tokens == 4096

    def test_unchunked_separates_prefill_and_decode(self):
        eng = make_engine(chunked_prefill=False)
        eng.submit(req(prompt=1000, out=10, app="a"))
        eng.step()  # a prefilled
        eng.submit(req(prompt=1000, out=10, app="b"))
        info = eng.step()  # b prefill-only iteration
        assert info.n_decode_seqs == 0
        assert info.prefill_tokens == 1000


class TestStats:
    def test_busy_time_equals_now_when_saturated(self):
        eng = make_engine()
        eng.submit(req(prompt=5000, out=10))
        eng.run_until_idle()
        assert eng.stats.busy_seconds == pytest.approx(eng.now)

    def test_token_counters(self):
        eng = make_engine()
        eng.submit(req(prompt=1000, out=10))
        eng.run_until_idle()
        assert eng.stats.prefill_tokens == 1000
        assert eng.stats.decode_tokens == 9  # first token from prefill step
        assert eng.stats.requests_finished == 1
