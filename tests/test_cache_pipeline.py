"""Pipeline-level tests for the cache tiers: the disabled path is
byte-identical to a cache-free run, exact hits bypass the engine while
retrieval hits still synthesize, cached runs stay deterministic, the
``cache`` resource only exists when a tier is on, and cluster runs
release app pins on the hit path."""

from __future__ import annotations

import math

import pytest

from repro.baselines import FixedConfigPolicy
from repro.caching import CACHE_INSERT_SECONDS
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.evaluation.pipeline import CACHE_RESOURCE
from repro.evaluation.reports import cache_rows, query_group_rows
from repro.experiments.common import run_policy
from repro.util import canonical_query_id
from repro.workload import zipfian_workload

STUFF8 = RAGConfig(SynthesisMethod.STUFF, 8)

#: Small repeat-heavy trace: ~45 arrivals over a 6-query pool, so the
#: head repeats enough for every tier to hit.
_TRACE = dict(n_periods=3, period_s=10.0, rate_qps=1.5, pool_size=6,
              zipf_s=1.1, seed=0)


def _fingerprint(result) -> list[tuple]:
    return [
        (r.query_id, r.arrival_time, r.decision_time, r.finish_time,
         r.f1, r.queueing_delay, r.prefill_tokens, r.output_tokens,
         r.replica, r.config, r.cache_hit, r.cache_tier, r.cache_stale,
         r.cache_age_s, r.cache_lookup_seconds)
        for r in result.records
    ]


def _serve(finsec_bundle, **kwargs):
    return run_policy(finsec_bundle, FixedConfigPolicy(STUFF8),
                      workload=zipfian_workload(**_TRACE), seed=0,
                      **kwargs)


class TestDisabledPath:
    def test_default_matches_explicit_off(self, finsec_bundle):
        """No cache kwargs and ``result_cache='off'`` are the same run,
        record for record (the byte-identity vs the *pre-caching*
        pipeline is pinned by the unchanged golden-fingerprint tests)."""
        base = _serve(finsec_bundle)
        off = _serve(finsec_bundle, result_cache="off")
        assert _fingerprint(base) == _fingerprint(off)
        assert base.result_cache is None and base.cache_stats == {}

    def test_disabled_records_carry_defaults(self, finsec_bundle):
        result = _serve(finsec_bundle)
        assert all(not r.cache_hit and r.cache_tier is None
                   for r in result.records)
        assert math.isnan(result.cache_hit_rate) is False
        assert result.cache_hit_rate == 0.0
        assert result.cache_saved_dollars == 0.0

    def test_no_cache_resource_when_disabled(self, finsec_bundle):
        assert CACHE_RESOURCE not in _serve(finsec_bundle).resource_stats
        cached = _serve(finsec_bundle, result_cache="exact")
        assert CACHE_RESOURCE in cached.resource_stats
        # Every arrival probes once; misses also pay the insert.
        assert (cached.resource_stats[CACHE_RESOURCE].n_requests
                >= len(cached.records))


class TestExactResultTier:
    def test_hits_bypass_the_engine(self, finsec_bundle):
        base = _serve(finsec_bundle)
        cached = _serve(finsec_bundle, result_cache="exact")
        hits = [r for r in cached.records if r.cache_hit]
        assert cached.cache_hit_rate > 0.3
        assert hits and all(r.cache_tier == "result-exact" for r in hits)
        # A result hit never touches retrieval or the engine.
        for r in hits:
            assert r.prefill_tokens == 0 and r.output_tokens == 0
            assert r.retrieval_seconds == 0.0
            assert r.cache_lookup_seconds > 0.0
            assert r.cache_age_s >= 0.0
        # The whole point: repeats get cheaper and faster.
        assert cached.mean_delay < base.mean_delay
        assert (cached.ledger.total_dollars < base.ledger.total_dollars)
        assert cached.cache_saved_dollars > 0.0

    def test_exact_repeats_score_identically(self, finsec_bundle):
        """A hit re-scores the cached tokens against the hitting
        query's own ground truth — identical for exact repeats."""
        cached = _serve(finsec_bundle, result_cache="exact")
        by_canonical: dict[str, list] = {}
        for r in cached.records:
            by_canonical.setdefault(
                canonical_query_id(r.query_id), []).append(r)
        for group in by_canonical.values():
            misses = [r.f1 for r in group if not r.cache_hit]
            hits = [r.f1 for r in group
                    if r.cache_tier == "result-exact"]
            if misses and hits:
                assert all(f1 == pytest.approx(misses[-1])
                           for f1 in hits)

    def test_cached_run_is_deterministic(self, finsec_bundle):
        a = _serve(finsec_bundle, result_cache="exact",
                   retrieval_cache=True, cache_eviction="gdsf")
        b = _serve(finsec_bundle, result_cache="exact",
                   retrieval_cache=True, cache_eviction="gdsf")
        assert _fingerprint(a) == _fingerprint(b)

    def test_tiny_capacity_evicts_but_completes(self, finsec_bundle):
        cached = _serve(finsec_bundle, result_cache="exact",
                        cache_capacity=2, cache_eviction="gdsf")
        assert len(cached.records) > 0
        assert cached.cache_stats["result"].evictions > 0
        # Squeezed capacity can only lose hits vs a roomy cache.
        roomy = _serve(finsec_bundle, result_cache="exact",
                       cache_capacity=256, cache_eviction="gdsf")
        assert cached.cache_hit_rate <= roomy.cache_hit_rate

    def test_ttl_expires_entries(self, finsec_bundle):
        """A TTL shorter than the repeat spacing forfeits hits."""
        no_ttl = _serve(finsec_bundle, result_cache="exact")
        short = _serve(finsec_bundle, result_cache="exact",
                       cache_ttl=0.5)
        assert short.cache_stats["result"].expirations > 0
        assert short.cache_hit_rate < no_ttl.cache_hit_rate


class TestRetrievalTier:
    def test_hits_still_synthesize(self, finsec_bundle):
        cached = _serve(finsec_bundle, retrieval_cache=True)
        hits = [r for r in cached.records if r.cache_tier == "retrieval"]
        assert hits
        for r in hits:
            assert r.output_tokens > 0  # fresh answer over cached chunks
            assert r.retrieval_seconds == 0.0  # but no scatter-gather
        # Quality is untouched by construction: identical chunk ids in,
        # identical synthesis out.
        base = _serve(finsec_bundle)
        assert cached.mean_f1 == pytest.approx(base.mean_f1)

    def test_result_tier_shadows_retrieval_tier(self, finsec_bundle):
        both = _serve(finsec_bundle, result_cache="exact",
                      retrieval_cache=True)
        tiers = {r.cache_tier for r in both.records if r.cache_hit}
        assert "result-exact" in tiers


class TestSemanticTier:
    def test_semantic_promotes_and_beats_exact(self, finsec_bundle):
        exact = _serve(finsec_bundle, result_cache="exact")
        semantic = _serve(finsec_bundle, result_cache="semantic",
                          semantic_threshold=0.9)
        assert semantic.cache_hit_rate >= exact.cache_hit_rate
        stats = semantic.cache_stats["result"]
        if stats.semantic_hits:
            # Promotion: each semantic hit re-inserts under the exact
            # key, so inserts exceed the miss count alone.
            assert stats.inserts > len(semantic.records) - stats.hits


class TestClusterHitPath:
    def test_cluster_cache_run_releases_app_pins(self, finsec_bundle):
        """Result hits on a cluster must release the decide-time app
        pin, or draining/retirement (and this run's completion) would
        strand; every arrival completing is the observable contract."""
        cached = _serve(finsec_bundle, result_cache="exact",
                        n_replicas=2, router="least-outstanding")
        base = _serve(finsec_bundle, n_replicas=2,
                      router="least-outstanding")
        assert len(cached.records) == len(base.records)
        assert cached.cache_hit_rate > 0.0
        assert cached.mean_delay < base.mean_delay


class TestReports:
    def test_cache_rows_and_query_groups(self, finsec_bundle):
        cached = _serve(finsec_bundle, result_cache="exact",
                        retrieval_cache=True)
        rows = cache_rows(cached)
        assert {r["tier"] for r in rows} == {"result", "retrieval"}
        for row in rows:
            assert row["lookups"] >= row["hits"] >= 0
        groups = query_group_rows(cached)
        assert sum(g["repeats"] for g in groups) == len(cached.records)
        assert any(g["repeats"] > 1 for g in groups)
        assert all("#r" not in g["query"] for g in groups)

    def test_insert_cost_is_charged(self, finsec_bundle):
        cached = _serve(finsec_bundle, result_cache="exact")
        stats = cached.cache_stats["result"]
        busy = cached.resource_stats[CACHE_RESOURCE].busy_seconds
        # At minimum every insert's hold shows up on the resource.
        assert busy >= stats.inserts * CACHE_INSERT_SECONDS - 1e-9
