"""Benchmark regression gate: compare fresh artifacts to baselines.

CI's ``bench-regression`` job runs the micro-benchmarks
(``bench_cluster_events.py``, ``bench_kernel_micro.py``,
``bench_retrieval_shards.py``, ``bench_autoscale.py``) in fast mode,
then invokes this script to compare the freshly written
``benchmarks/artifacts/*.json`` against the **committed**
``benchmarks/baselines/*.json``. Any gated metric that regresses by
more than the tolerance (default 25%, ``REPRO_BENCH_TOLERANCE``)
fails the job; improvements and in-band drift are reported but pass.

Two kinds of gated metrics:

* **deterministic** — simulated quantities (queries/sec of simulated
  time, scatter-gather latencies). Identical on every machine for a
  given seed, so the committed value is the exact expectation and the
  tolerance only absorbs numeric/library drift.
* **wall-clock** — real events/sec throughput. Machine-dependent, so
  the committed baseline is a *floor*: the dev-machine measurement
  de-rated by ``WALL_CLOCK_DERATE`` at ``--update`` time to absorb
  slower CI runners. The 25% gate on top of that floor still catches
  order-of-magnitude kernel regressions while tolerating runner
  variance. Re-baseline from a representative run with::

      python benchmarks/check_regression.py --update

Usage::

    python benchmarks/check_regression.py            # gate (CI)
    python benchmarks/check_regression.py --update   # rewrite baselines
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
ARTIFACT_DIR = BENCH_DIR / "artifacts"
BASELINE_DIR = BENCH_DIR / "baselines"

DEFAULT_TOLERANCE = 0.25
#: Wall-clock baselines are recorded at this fraction of the measured
#: value, turning them into floors that absorb runner variance.
WALL_CLOCK_DERATE = 0.40


@dataclass(frozen=True)
class Metric:
    """One gated number inside an artifact.

    ``path`` addresses the value: a key for top-level scalars, or
    ``("rows", key_fields, value_field)`` handled by the extractors
    below. ``higher_better`` sets the regression direction;
    ``wall_clock`` marks machine-dependent metrics (de-rated on
    ``--update``).
    """

    name: str
    higher_better: bool
    wall_clock: bool = False


def _shard_key(row: dict) -> str:
    return f"shards={row['shards']},reranker={row['reranker']}"


def extract_metrics(artifact_name: str, payload: dict) -> dict[str, Metric]:
    """Flatten an artifact into ``{metric_name: Metric}`` plus values.

    Returns a dict of metric name -> (Metric, value).
    """
    out: dict[str, tuple[Metric, float]] = {}
    if artifact_name == "bench_cluster_events.json":
        out["events_per_sec"] = (
            Metric("events_per_sec", higher_better=True, wall_clock=True),
            float(payload["events_per_sec"]),
        )
    elif artifact_name == "kernel_micro.json":
        out["ops_per_sec"] = (
            Metric("ops_per_sec", higher_better=True, wall_clock=True),
            float(payload["ops_per_sec"]),
        )
    elif artifact_name == "retrieval_shard_sweep.json":
        for row in payload["rows"]:
            key = _shard_key(row)
            out[f"{key}:throughput_qps"] = (
                Metric("throughput_qps", higher_better=True),
                float(row["throughput_qps"]),
            )
            out[f"{key}:mean_retrieval_s"] = (
                Metric("mean_retrieval_s", higher_better=False),
                float(row["mean_retrieval_s"]),
            )
            out[f"{key}:p99_retrieval_s"] = (
                Metric("p99_retrieval_s", higher_better=False),
                float(row["p99_retrieval_s"]),
            )
    elif artifact_name == "autoscale_trace.json":
        # Deterministic simulated quantities per fleet arm; scaling
        # event counts are reported in the artifact but not gated
        # (they may legitimately shift when a policy is retuned).
        for row in payload["rows"]:
            key = f"fleet={row['fleet']}"
            out[f"{key}:slo_attainment"] = (
                Metric("slo_attainment", higher_better=True),
                float(row["slo_attainment"]),
            )
            out[f"{key}:dollars_per_query"] = (
                Metric("dollars_per_query", higher_better=False),
                float(row["dollars_per_query"]),
            )
            out[f"{key}:p99_delay_s"] = (
                Metric("p99_delay_s", higher_better=False),
                float(row["p99_delay_s"]),
            )
    elif artifact_name == "decide_micro.json":
        # Both wall-clock: absolute fast-path throughput, plus its
        # ratio over the retained plan-materialising reference (the
        # ratio is machine-dependent too, but far more stable — a
        # regression here means the fast path itself decayed).
        out["decisions_per_sec"] = (
            Metric("decisions_per_sec", higher_better=True, wall_clock=True),
            float(payload["decisions_per_sec"]),
        )
        out["speedup_vs_plans"] = (
            Metric("speedup_vs_plans", higher_better=True, wall_clock=True),
            float(payload["speedup_vs_plans"]),
        )
    elif artifact_name == "cache_zipf.json":
        # Hit rates are deterministic (seeded trace, seeded keys);
        # events_per_sec is the wall-clock hit-path throughput.
        out["hit_rate"] = (
            Metric("hit_rate", higher_better=True),
            float(payload["hit_rate"]),
        )
        out["result_hit_rate"] = (
            Metric("result_hit_rate", higher_better=True),
            float(payload["result_hit_rate"]),
        )
        out["events_per_sec"] = (
            Metric("events_per_sec", higher_better=True, wall_clock=True),
            float(payload["events_per_sec"]),
        )
    else:
        raise ValueError(f"no metric spec for artifact {artifact_name!r}")
    return out


GATED_ARTIFACTS = ("bench_cluster_events.json",
                   "kernel_micro.json",
                   "decide_micro.json",
                   "retrieval_shard_sweep.json",
                   "autoscale_trace.json",
                   "cache_zipf.json")

#: Artifacts whose gated metrics are machine-dependent throughputs;
#: ``--update`` records ``metric * WALL_CLOCK_DERATE`` as a floor for
#: every listed key.
WALL_CLOCK_ARTIFACTS = {
    "bench_cluster_events.json": ("events_per_sec",),
    "kernel_micro.json": ("ops_per_sec",),
    "decide_micro.json": ("decisions_per_sec", "speedup_vs_plans"),
    "cache_zipf.json": ("events_per_sec",),
}


def compare(metric: Metric, baseline: float, measured: float,
            tolerance: float) -> tuple[bool, float]:
    """Return ``(regressed, signed_change)``.

    ``signed_change`` is the relative change in the *bad* direction
    (positive = regression): a throughput drop or a latency rise.
    """
    if baseline == 0:
        return False, 0.0
    if metric.higher_better:
        change = (baseline - measured) / baseline
    else:
        change = (measured - baseline) / baseline
    return change > tolerance, change


def run_gate(tolerance: float) -> int:
    failures: list[str] = []
    lines: list[str] = []
    for name in GATED_ARTIFACTS:
        artifact_path = ARTIFACT_DIR / name
        baseline_path = BASELINE_DIR / name
        if not artifact_path.exists():
            failures.append(f"{name}: artifact missing — did the "
                            "benchmark run?")
            continue
        if not baseline_path.exists():
            failures.append(f"{name}: no committed baseline "
                            f"({baseline_path}); run --update and "
                            "commit it")
            continue
        measured = extract_metrics(name, json.loads(artifact_path.read_text()))
        baseline = extract_metrics(name, json.loads(baseline_path.read_text()))
        for key, (metric, value) in sorted(measured.items()):
            if key not in baseline:
                failures.append(f"{name}:{key}: not in baseline — "
                                "re-baseline with --update")
                continue
            base_value = baseline[key][1]
            regressed, change = compare(metric, base_value, value, tolerance)
            tag = "wall-clock floor" if metric.wall_clock else "deterministic"
            verdict = "FAIL" if regressed else "ok"
            # measured/baseline ratio on every line — passing runs show
            # headroom trends in the nightly logs, not just failures.
            ratio = value / base_value if base_value else float("inf")
            lines.append(
                f"  [{verdict}] {name}:{key}: measured {value:.6g} vs "
                f"baseline {base_value:.6g} (ratio {ratio:.2f}x, {tag}, "
                f"{'regression' if change > 0 else 'improvement'} "
                f"{abs(change) * 100:.1f}%)"
            )
            if regressed:
                failures.append(
                    f"{name}:{key} regressed {change * 100:.1f}% "
                    f"(measured {value:.6g}, baseline {base_value:.6g}, "
                    f"tolerance {tolerance * 100:.0f}%)"
                )
        missing = sorted(set(baseline) - set(measured))
        for key in missing:
            failures.append(f"{name}:{key}: baselined metric missing "
                            "from the fresh artifact")
    print(f"benchmark regression gate (tolerance {tolerance * 100:.0f}%):")
    for line in lines:
        print(line)
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("all gated benchmark metrics within tolerance")
    return 0


def update_baselines() -> int:
    BASELINE_DIR.mkdir(exist_ok=True)
    for name in GATED_ARTIFACTS:
        artifact_path = ARTIFACT_DIR / name
        if not artifact_path.exists():
            print(f"skipping {name}: no artifact (run the benchmark "
                  "first)", file=sys.stderr)
            return 1
        payload = json.loads(artifact_path.read_text())
        metrics = extract_metrics(name, payload)
        if name in WALL_CLOCK_ARTIFACTS:
            keys = WALL_CLOCK_ARTIFACTS[name]
            baseline = dict(payload)
            floors = []
            for key in keys:
                measured = metrics[key][1]
                baseline[key] = measured * WALL_CLOCK_DERATE
                floors.append(f"{key} ({measured:.0f})")
            baseline["_note"] = (
                f"wall-clock FLOOR(s): measured {', '.join(floors)} "
                f"de-rated by {WALL_CLOCK_DERATE} to absorb slower CI "
                "runners; regenerate with check_regression.py --update"
            )
            baseline.pop("best_seconds", None)
            baseline.pop("reference_best_seconds", None)
        else:
            baseline = dict(payload)
            baseline.pop("wall_seconds", None)
            baseline["_note"] = (
                "deterministic simulated metrics: exact expectations "
                "for the committed seed; regenerate with "
                "check_regression.py --update"
            )
        (BASELINE_DIR / name).write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"baselined {name} -> {BASELINE_DIR / name}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite baselines from current artifacts")
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE",
                                     DEFAULT_TOLERANCE)),
        help="max allowed regression as a fraction (default 0.25)")
    args = parser.parse_args(argv)
    if args.update:
        return update_baselines()
    return run_gate(args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
