"""Benchmark: regenerate the paper's fig15_larger_llm via its experiment driver."""

import pytest

from repro.experiments import fig15_larger_llm

from conftest import run_experiment


@pytest.mark.benchmark(group="fig15_larger_llm")
def test_fig15_larger_llm(benchmark, bench_fast):
    run_experiment(benchmark, fig15_larger_llm, bench_fast)
