"""Shard-sweep benchmark for the scatter-gather retrieval subsystem.

Replays the ``fig_retrieval_scaling`` sweep (K ∈ {1, 2, 4, 8} index
shards, one search executor each, retrieval-bound load) and writes a
JSON artifact — simulated queries/sec and p99 scatter-gather latency
vs K — next to ``bench_cluster_events.json`` so retrieval-layer
regressions are diffable across runs. Runs under plain pytest (no
pytest-benchmark dependency) so the CI ``--fast`` smoke job can
execute it on a bare ``numpy + pytest`` install.
"""

from __future__ import annotations

import time

from repro.experiments import fig_retrieval_scaling

from conftest import FAST, write_artifact


def test_retrieval_shard_sweep():
    start = time.perf_counter()
    report = fig_retrieval_scaling.run(fast=FAST)
    wall_seconds = time.perf_counter() - start

    swept = [r for r in report.rows if r["reranker"] == "off"]
    assert [r["shards"] for r in swept] == list(
        fig_retrieval_scaling.SHARD_SWEEP)

    # The two opposing forces that make K a real knob: per-shard queue
    # delay falls monotonically with K, gather overhead rises.
    queue = [r["mean_shard_queue_delay_s"] for r in swept]
    gather = [r["mean_gather_s"] for r in swept]
    assert all(a > b for a, b in zip(queue, queue[1:])), queue
    assert all(a < b for a, b in zip(gather, gather[1:])), gather
    # Gather correctness: sharding must not change answer quality.
    assert len({round(r["mean_f1"], 9) for r in swept}) == 1

    artifact = write_artifact("retrieval_shard_sweep.json", {
        "benchmark": "retrieval_shard_sweep",
        "dataset": "squad",
        "rows": [
            {
                "shards": r["shards"],
                "reranker": r["reranker"],
                "throughput_qps": r["throughput_qps"],
                "p99_retrieval_s": r["p99_retrieval_s"],
                "mean_retrieval_s": r["mean_retrieval_s"],
                "mean_shard_queue_delay_s": r["mean_shard_queue_delay_s"],
                "mean_gather_s": r["mean_gather_s"],
            }
            for r in report.rows
        ],
        "wall_seconds": wall_seconds,
        "fast_mode": FAST,
    })
    print()
    print(report.format())
    print(f"retrieval shard sweep in {wall_seconds:.2f}s -> {artifact}")
