"""Benchmark: regenerate the paper's fig16_incremental via its experiment driver."""

import pytest

from repro.experiments import fig16_incremental

from conftest import run_experiment


@pytest.mark.benchmark(group="fig16_incremental")
def test_fig16_incremental(benchmark, bench_fast):
    run_experiment(benchmark, fig16_incremental, bench_fast)
