"""Benchmark: regenerate the paper's fig18_overhead via its experiment driver.

Also runs the profiler-contention load sweep and drops its table as a
JSON artifact (``benchmarks/artifacts/fig18_load_sweep.json``) so the
queueing behavior under saturation is diffable across runs.
"""

import pytest

from repro.experiments import fig18_overhead

from conftest import run_experiment, write_artifact


@pytest.mark.benchmark(group="fig18_overhead")
def test_fig18_overhead(benchmark, bench_fast):
    run_experiment(benchmark, fig18_overhead, bench_fast)


@pytest.mark.benchmark(group="fig18_overhead")
def test_fig18_load_sweep(benchmark, bench_fast):
    report = benchmark.pedantic(
        fig18_overhead.run_load_sweep,
        kwargs={"fast": bench_fast}, rounds=1, iterations=1,
    )
    print()
    print(report.format())
    assert report.rows, "load sweep produced no rows"
    # Queueing must grow across the sweep (saturation is the point).
    delays = [row["mean_queue_delay_s"] for row in report.rows]
    assert delays[-1] > delays[0]

    artifact = write_artifact(
        "fig18_load_sweep.json",
        {"name": report.name, "rows": report.rows, "notes": report.notes},
    )
    print(f"\nartifact: {artifact}")
