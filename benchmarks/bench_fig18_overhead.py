"""Benchmark: regenerate the paper's fig18_overhead via its experiment driver."""

import pytest

from repro.experiments import fig18_overhead

from conftest import run_experiment


@pytest.mark.benchmark(group="fig18_overhead")
def test_fig18_overhead(benchmark, bench_fast):
    run_experiment(benchmark, fig18_overhead, bench_fast)
