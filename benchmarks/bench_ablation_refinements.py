"""Benchmark: ablate METIS' refinement/scheduler choices (DESIGN.md §5)."""

import pytest

from repro.experiments import ablation_refinements

from conftest import run_experiment


@pytest.mark.benchmark(group="ablation")
def test_ablation_refinements(benchmark, bench_fast):
    run_experiment(benchmark, ablation_refinements, bench_fast)
