"""Decision-plane decisions/sec micro-benchmark.

Replays a deterministic tape of ``(pruned space, scheduling view)``
pairs — the candidate grids a METIS trace actually presents, with
query shapes that cluster and recur, and a memory ladder spanning
whole-fit, unit-fit (Fig 8) and fallback regimes — through two
choosers:

* the **fast path**: ``JointScheduler.choose`` scoring memoized
  closed-form :class:`PlanFootprint` grids with numpy;
* the **reference**: ``JointScheduler.choose_reference``, the original
  implementation that materialises a full ``SynthesisPlan`` per
  candidate.

Both must return identical decisions (asserted here per tape entry;
``tests/test_decide_fastpath.py`` pins the same on a live run). The
artifact gates ``decisions_per_sec`` and ``speedup_vs_plans`` as
wall-clock floors in ``check_regression.py``.
"""

from __future__ import annotations

import time

from repro.config.knobs import SynthesisMethod
from repro.config.space import PrunedSpace
from repro.core.policy import SchedulingView
from repro.core.scheduler import JointScheduler
from repro.util.rng import RngStreams

from conftest import FAST, write_artifact

N_DECISIONS = 2_000 if FAST else 10_000
ROUNDS = 3 if FAST else 5

#: Pruned-space shapes of the kind Algorithm 1 emits (method subsets,
#: narrow num_chunks windows, map_reduce ilen ranges).
SPACES = (
    PrunedSpace((SynthesisMethod.STUFF,), (2, 6)),
    PrunedSpace((SynthesisMethod.MAP_RERANK, SynthesisMethod.STUFF), (1, 8)),
    PrunedSpace((SynthesisMethod.STUFF, SynthesisMethod.MAP_REDUCE),
                (3, 10), (40, 180)),
    PrunedSpace(tuple(SynthesisMethod), (2, 9), (30, 200)),
    PrunedSpace((SynthesisMethod.MAP_REDUCE,), (4, 12), (50, 150)),
)

#: Query shapes cluster across a trace (datasets have typical query /
#: answer lengths); a handful of recurring shapes matches what the
#: memoized grids see in production.
SHAPES = ((30, 500, 20), (45, 500, 24), (30, 500, 32), (60, 400, 20),
          (22, 650, 28), (45, 500, 20))


def build_tape() -> list[tuple[PrunedSpace, SchedulingView]]:
    """Deterministic (pruned, view) tape spanning all fit regimes."""
    rng = RngStreams(17).get("bench", "decide-micro")
    tape = []
    for _ in range(N_DECISIONS):
        pruned = SPACES[int(rng.integers(len(SPACES)))]
        q, c, a = SHAPES[int(rng.integers(len(SHAPES)))]
        # Log-uniform memory from "nothing fits" to "everything fits".
        available = float(10.0 ** rng.uniform(5.5, 11.0))
        tape.append((pruned, SchedulingView(
            now=0.0,
            free_kv_bytes=available,
            available_kv_bytes=available,
            kv_bytes_per_token=131_072.0,
            chunk_tokens=c,
            query_tokens=q,
            answer_tokens=a,
        )))
    return tape


def drive(scheduler: JointScheduler, tape, chooser) -> list:
    return [chooser(pruned, view) for pruned, view in tape]


def _best_seconds(scheduler, tape, chooser, rounds: int) -> float:
    timings = []
    for _ in range(rounds):
        start = time.perf_counter()
        drive(scheduler, tape, chooser)
        timings.append(time.perf_counter() - start)
    return min(timings)


def test_decide_micro_throughput():
    scheduler = JointScheduler()
    tape = build_tape()

    # Warm-up (fills the footprint/grid memo caches, exactly as a
    # trace's first queries do) + decision-equivalence check.
    fast_decisions = drive(scheduler, tape, scheduler.choose)
    ref_decisions = drive(scheduler, tape, scheduler.choose_reference)
    fell_back = 0
    for fast, ref in zip(fast_decisions, ref_decisions):
        assert (fast.config, fast.fell_back, fast.n_candidates,
                fast.n_fitting) == (ref.config, ref.fell_back,
                                    ref.n_candidates, ref.n_fitting)
        fell_back += fast.fell_back
    # The memory ladder must exercise fallback and non-fallback paths.
    assert 0 < fell_back < len(tape)

    best_fast = _best_seconds(scheduler, tape, scheduler.choose, ROUNDS)
    # The reference is ~order-of-magnitude slower; one timed round
    # keeps the benchmark quick without blurring the ratio much.
    best_ref = _best_seconds(scheduler, tape, scheduler.choose_reference,
                             max(1, ROUNDS - 2))

    decisions_per_sec = len(tape) / best_fast if best_fast > 0 else 0.0
    ref_per_sec = len(tape) / best_ref if best_ref > 0 else 0.0
    speedup = decisions_per_sec / ref_per_sec if ref_per_sec > 0 else 0.0
    assert speedup >= 5.0, (
        f"fast path only {speedup:.1f}x over plan materialisation")

    artifact = write_artifact("decide_micro.json", {
        "benchmark": "decide_micro_throughput",
        "n_decisions": len(tape),
        "n_fell_back": fell_back,
        "best_seconds": best_fast,
        "reference_best_seconds": best_ref,
        "decisions_per_sec": decisions_per_sec,
        "reference_decisions_per_sec": ref_per_sec,
        "speedup_vs_plans": speedup,
        "fast_mode": FAST,
    })
    print(f"\ndecide micro: {decisions_per_sec:,.0f} decisions/sec "
          f"(fast) vs {ref_per_sec:,.0f} (plan-materialising) = "
          f"{speedup:.1f}x -> {artifact}")
