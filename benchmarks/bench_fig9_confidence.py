"""Benchmark: regenerate the paper's fig9_confidence via its experiment driver."""

import pytest

from repro.experiments import fig9_confidence

from conftest import run_experiment


@pytest.mark.benchmark(group="fig9_confidence")
def test_fig9_confidence(benchmark, bench_fast):
    run_experiment(benchmark, fig9_confidence, bench_fast)
