"""Benchmark: regenerate the paper's fig5_per_query via its experiment driver."""

import pytest

from repro.experiments import fig5_per_query

from conftest import run_experiment


@pytest.mark.benchmark(group="fig5_per_query")
def test_fig5_per_query(benchmark, bench_fast):
    run_experiment(benchmark, fig5_per_query, bench_fast)
