"""Events/sec micro-benchmark for the event-driven cluster stepping.

Measures how fast the kernel pushes a multi-replica cluster through a
full workload when every engine iteration is a first-class event
(StepDriver arming/wake/sleep/reschedule included), and writes a JSON
artifact next to ``sim_kernel_micro.json`` so event-loop regressions
are diffable across runs. Runs under plain pytest (no
pytest-benchmark dependency) so the CI ``--fast`` smoke job can
execute it on a bare ``numpy + pytest`` install.
"""

from __future__ import annotations

import time

from repro.llm import A40, ClusterSpec, MISTRAL_7B_AWQ
from repro.serving import ClusterEngine, EngineConfig, InferenceRequest
from repro.sim import EventLoop
from repro.util.rng import RngStreams
from repro.util.units import GB

from conftest import FAST, write_artifact

N_REPLICAS = 4
N_REQUESTS = 60 if FAST else 300
ROUNDS = 2 if FAST else 5


def build_cluster() -> ClusterEngine:
    config = EngineConfig(
        model=MISTRAL_7B_AWQ,
        cluster=ClusterSpec(A40),
        kv_pool_cap_bytes=1 * GB,  # tight: admission stalls + queueing
    )
    return ClusterEngine(config, n_replicas=N_REPLICAS,
                         router="least-outstanding")


def workload() -> list[dict]:
    rng = RngStreams(7).get("bench", "cluster-events")
    specs, t = [], 0.0
    for _ in range(N_REQUESTS):
        t += float(rng.exponential(0.01))
        specs.append(dict(
            prompt_tokens=int(rng.integers(100, 1_500)),
            output_tokens=int(rng.integers(1, 24)),
            arrival_time=t,
            app_id=f"app-{int(rng.integers(0, 16))}",
        ))
    return specs


def drive_once(specs: list[dict]) -> tuple[int, int]:
    """One full event-driven run; returns (dispatches, engine steps)."""
    cluster = build_cluster()
    loop = EventLoop()
    driver = cluster.attach(loop)
    for spec in specs:
        loop.schedule(spec["arrival_time"], "arrival",
                      lambda t, s: cluster.submit(InferenceRequest(**s)),
                      spec)
    loop.run()
    assert not cluster.has_work()
    return loop.n_dispatched, driver.n_steps


def test_cluster_event_throughput():
    specs = workload()
    drive_once(specs)  # warm-up (imports, caches)
    timings = []
    dispatched = steps = 0
    for _ in range(ROUNDS):
        start = time.perf_counter()
        dispatched, steps = drive_once(specs)
        timings.append(time.perf_counter() - start)
    best = min(timings)
    events_per_sec = dispatched / best if best > 0 else 0.0
    assert dispatched == steps + N_REQUESTS  # step events + arrivals
    assert steps > N_REQUESTS  # a real multi-iteration serving run

    artifact = write_artifact("bench_cluster_events.json", {
        "benchmark": "cluster_event_throughput",
        "n_replicas": N_REPLICAS,
        "n_requests": N_REQUESTS,
        "events_per_run": dispatched,
        "engine_steps_per_run": steps,
        "best_seconds": best,
        "events_per_sec": events_per_sec,
        "fast_mode": FAST,
    })
    print(f"\ncluster events: {events_per_sec:,.0f} events/sec "
          f"({steps} steps, {N_REPLICAS} replicas) -> {artifact}")
