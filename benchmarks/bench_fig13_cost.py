"""Benchmark: regenerate the paper's fig13_cost via its experiment driver."""

import pytest

from repro.experiments import fig13_cost

from conftest import run_experiment


@pytest.mark.benchmark(group="fig13_cost")
def test_fig13_cost(benchmark, bench_fast):
    run_experiment(benchmark, fig13_cost, bench_fast)
