"""Benchmark harness helpers.

Each ``bench_*`` module regenerates one paper table/figure via its
experiment driver, timed once with pytest-benchmark and printed in
paper-comparable form. Set ``REPRO_BENCH_FAST=1`` to shrink workloads
(smoke mode) — the tables keep their shape but lose statistical weight.
"""

from __future__ import annotations

import os

import pytest


FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"


@pytest.fixture(scope="session")
def bench_fast() -> bool:
    return FAST


def run_experiment(benchmark, driver, fast: bool):
    """Run one experiment driver under pytest-benchmark and print it."""
    report = benchmark.pedantic(
        driver.run, kwargs={"fast": fast}, rounds=1, iterations=1
    )
    print()
    print(report.format())
    assert report.rows, f"{driver.__name__} produced no rows"
    return report
