"""Benchmark harness helpers.

Each ``bench_*`` module regenerates one paper table/figure via its
experiment driver, timed once with pytest-benchmark and printed in
paper-comparable form. Set ``REPRO_BENCH_FAST=1`` to shrink workloads
(smoke mode) — the tables keep their shape but lose statistical weight.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest


FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"

ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts"


def write_artifact(name: str, payload: dict) -> Path:
    """Write one benchmark's JSON artifact (diffable across runs)."""
    ARTIFACT_DIR.mkdir(exist_ok=True)
    path = ARTIFACT_DIR / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


@pytest.fixture(scope="session")
def bench_fast() -> bool:
    return FAST


def run_experiment(benchmark, driver, fast: bool):
    """Run one experiment driver under pytest-benchmark and print it."""
    report = benchmark.pedantic(
        driver.run, kwargs={"fast": fast}, rounds=1, iterations=1
    )
    print()
    print(report.format())
    assert report.rows, f"{driver.__name__} produced no rows"
    return report
