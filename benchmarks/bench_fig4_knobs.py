"""Benchmark: regenerate the paper's fig4_knobs via its experiment driver."""

import pytest

from repro.experiments import fig4_knobs

from conftest import run_experiment


@pytest.mark.benchmark(group="fig4_knobs")
def test_fig4_knobs(benchmark, bench_fast):
    run_experiment(benchmark, fig4_knobs, bench_fast)
