"""Benchmark: regenerate the paper's fig11_throughput via its experiment driver."""

import pytest

from repro.experiments import fig11_throughput

from conftest import run_experiment


@pytest.mark.benchmark(group="fig11_throughput")
def test_fig11_throughput(benchmark, bench_fast):
    run_experiment(benchmark, fig11_throughput, bench_fast)
