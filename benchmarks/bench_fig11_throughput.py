"""Benchmark: regenerate the paper's fig11_throughput via its experiment driver.

Also runs the cluster replica-sweep variant and drops its table as a
JSON artifact (``benchmarks/artifacts/fig11_replica_sweep.json``) so
scaling regressions are diffable across runs.
"""

import pytest

from repro.experiments import fig11_throughput

from conftest import run_experiment, write_artifact


@pytest.mark.benchmark(group="fig11_throughput")
def test_fig11_throughput(benchmark, bench_fast):
    run_experiment(benchmark, fig11_throughput, bench_fast)


@pytest.mark.benchmark(group="fig11_throughput")
def test_fig11_replica_sweep(benchmark, bench_fast):
    report = benchmark.pedantic(
        fig11_throughput.run_replica_sweep,
        kwargs={"fast": bench_fast}, rounds=1, iterations=1,
    )
    print()
    print(report.format())
    assert report.rows, "replica sweep produced no rows"

    artifact = write_artifact(
        "fig11_replica_sweep.json",
        {"name": report.name, "rows": report.rows, "notes": report.notes},
    )
    print(f"\nartifact: {artifact}")
