"""Benchmark: regenerate the paper's fig11_throughput via its experiment driver.

Also runs the cluster replica-sweep variant and drops its table as a
JSON artifact (``benchmarks/artifacts/fig11_replica_sweep.json``) so
scaling regressions are diffable across runs.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import fig11_throughput

from conftest import run_experiment

ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts"


@pytest.mark.benchmark(group="fig11_throughput")
def test_fig11_throughput(benchmark, bench_fast):
    run_experiment(benchmark, fig11_throughput, bench_fast)


@pytest.mark.benchmark(group="fig11_throughput")
def test_fig11_replica_sweep(benchmark, bench_fast):
    report = benchmark.pedantic(
        fig11_throughput.run_replica_sweep,
        kwargs={"fast": bench_fast}, rounds=1, iterations=1,
    )
    print()
    print(report.format())
    assert report.rows, "replica sweep produced no rows"

    ARTIFACT_DIR.mkdir(exist_ok=True)
    artifact = ARTIFACT_DIR / "fig11_replica_sweep.json"
    artifact.write_text(json.dumps(
        {"name": report.name, "rows": report.rows, "notes": report.notes},
        indent=2, sort_keys=True,
    ))
    print(f"\nartifact: {artifact}")
