"""Benchmark: regenerate the paper's fig12_breakdown via its experiment driver."""

import pytest

from repro.experiments import fig12_breakdown

from conftest import run_experiment


@pytest.mark.benchmark(group="fig12_breakdown")
def test_fig12_breakdown(benchmark, bench_fast):
    run_experiment(benchmark, fig12_breakdown, bench_fast)
