"""Benchmark: regenerate the paper's fig17_profiler_llm via its experiment driver."""

import pytest

from repro.experiments import fig17_profiler_llm

from conftest import run_experiment


@pytest.mark.benchmark(group="fig17_profiler_llm")
def test_fig17_profiler_llm(benchmark, bench_fast):
    run_experiment(benchmark, fig17_profiler_llm, bench_fast)
