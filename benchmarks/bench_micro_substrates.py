"""Micro-benchmarks of the substrates themselves.

These time the hot paths a downstream user would care about when
scaling the simulator up: the discrete-event kernel, vector search,
embedding, engine iterations, KV-block accounting, profiling, and
quality evaluation. The kernel benchmark additionally writes an
events/sec JSON artifact (``benchmarks/artifacts/sim_kernel_micro.json``)
so kernel-throughput regressions are diffable across runs.
"""

import numpy as np
import pytest

from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.core.profiler import GPT4O_PROFILER, LLMProfiler
from repro.data import build_dataset
from repro.llm import A40, ClusterSpec, MISTRAL_7B_AWQ, SimTokenizer
from repro.llm.quality import QualityModel
from repro.retrieval.index import FlatL2Index
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.kv_cache import BlockManager
from repro.serving.request import InferenceRequest
from repro.sim import EventLoop, Resource
from repro.util.units import GB

from conftest import write_artifact


@pytest.fixture(scope="module")
def bundle():
    return build_dataset("finsec", n_queries=30)


@pytest.mark.benchmark(group="micro")
def test_flat_index_search_1k_vectors(benchmark):
    rng = np.random.default_rng(0)
    index = FlatL2Index(dim=512)
    index.add(rng.normal(size=(1_000, 512)).astype(np.float32))
    queries = rng.normal(size=(16, 512)).astype(np.float32)
    benchmark(index.search, queries, 10)


@pytest.mark.benchmark(group="micro")
def test_store_search(benchmark, bundle):
    benchmark(bundle.store.search, bundle.queries[0].text, 10)


@pytest.mark.benchmark(group="micro")
def test_tokenizer_count(benchmark, bundle):
    chunk = bundle.store.get(next(iter(bundle.chunk_facts)))
    tok = SimTokenizer()
    benchmark(tok.tokenize, chunk.text)


@pytest.mark.benchmark(group="micro")
def test_engine_drain_20_requests(benchmark):
    def drain():
        engine = ServingEngine(EngineConfig(
            model=MISTRAL_7B_AWQ, cluster=ClusterSpec(A40),
            kv_pool_cap_bytes=2 * GB,
        ))
        for i in range(20):
            engine.submit(InferenceRequest(
                prompt_tokens=2_000, output_tokens=16,
                arrival_time=0.0, app_id=f"q{i}",
            ))
        return engine.run_until_idle()

    iterations = benchmark(drain)
    assert iterations > 0


@pytest.mark.benchmark(group="micro")
def test_kv_block_alloc_free_cycle(benchmark):
    def cycle():
        bm = BlockManager(n_blocks=4_096, block_tokens=16)
        for seq in range(256):
            bm.allocate(seq, 200)
        for seq in range(256):
            bm.free(seq)

    benchmark(cycle)


@pytest.mark.benchmark(group="micro")
def test_sim_kernel_dispatch_throughput(benchmark):
    """Events/sec through the discrete-event kernel (pre-scheduled
    events plus resource-mediated completions), with a JSON artifact."""
    N_ROOT = 20_000

    def drain() -> int:
        loop = EventLoop()
        resource = Resource("bench", loop, concurrency=8)

        def on_arrival(t, i):
            resource.request(t, 0.001, lambda now, waited: None)

        for i in range(N_ROOT):
            loop.schedule(i * 0.0005, "arrival", on_arrival, i)
        loop.run()
        return loop.n_dispatched

    dispatched = benchmark(drain)
    assert dispatched == 2 * N_ROOT  # arrivals + resource completions

    mean_s = benchmark.stats.stats.mean
    events_per_sec = dispatched / mean_s if mean_s > 0 else 0.0
    artifact = write_artifact("sim_kernel_micro.json", {
        "benchmark": "sim_kernel_dispatch_throughput",
        "events_per_run": dispatched,
        "mean_seconds": mean_s,
        "events_per_sec": events_per_sec,
    })
    print(f"\nkernel: {events_per_sec:,.0f} events/sec -> {artifact}")


@pytest.mark.benchmark(group="micro")
def test_profiler_call(benchmark, bundle):
    profiler = LLMProfiler(GPT4O_PROFILER, 40)
    benchmark(profiler.profile, bundle.queries[0])


@pytest.mark.benchmark(group="micro")
def test_quality_expected_f1(benchmark, bundle):
    quality = QualityModel(bundle.quality_params)
    query = bundle.queries[0]
    hits = bundle.store.search(query.text, 9)
    ctx = bundle.synthesis_context(query, [h.chunk.chunk_id for h in hits])
    config = RAGConfig(SynthesisMethod.MAP_REDUCE, 9, 100)
    benchmark(quality.expected_f1, ctx, config.synthesis_method,
              config.intermediate_length)
