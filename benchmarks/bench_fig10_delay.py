"""Benchmark: regenerate the paper's fig10_delay via its experiment driver."""

import pytest

from repro.experiments import fig10_delay

from conftest import run_experiment


@pytest.mark.benchmark(group="fig10_delay")
def test_fig10_delay(benchmark, bench_fast):
    run_experiment(benchmark, fig10_delay, bench_fast)
