"""Hit-rate + events/sec benchmark for the caching subsystem.

Drives a :class:`~repro.evaluation.pipeline.QueryPipeline` directly
(so ``loop.n_dispatched`` is visible) over the Zipf repeat-heavy
trace with the exact result cache plus the retrieval memo tier on,
and writes ``cache_zipf.json``:

* ``hit_rate`` / ``result_hit_rate`` — deterministic: the Zipf trace,
  the cache keys, and the eviction order are all seeded, so a change
  here means cache *behavior* changed (gated strictly by
  ``check_regression.py``).
* ``events_per_sec`` — wall-clock: how fast the kernel pushes the
  cached workload through (hits collapse a query's whole
  retrieve/synthesize event chain into a lookup, so this also guards
  the hit path staying cheap). Gated with the wall-clock tolerance.

Runs under plain pytest (no pytest-benchmark dependency) so the CI
``--fast`` smoke job can execute it on a bare ``numpy + pytest``
install.
"""

from __future__ import annotations

import time

from repro.baselines import FixedConfigPolicy
from repro.caching import make_cache_config
from repro.config.knobs import RAGConfig, SynthesisMethod
from repro.data import build_dataset
from repro.evaluation.pipeline import QueryPipeline
from repro.experiments.common import default_engine_config
from repro.llm.generation import SimulatedGenerator
from repro.llm.quality import QualityModel
from repro.serving.engine import ServingEngine
from repro.workload import zipfian_workload

from conftest import FAST, write_artifact

SEED = 0
POOL = 20
N_PERIODS = 4 if FAST else 12
ROUNDS = 2 if FAST else 5
TRACE = dict(n_periods=N_PERIODS, period_s=30.0, rate_qps=1.5,
             pool_size=POOL, zipf_s=1.1)
CONFIG = RAGConfig(SynthesisMethod.STUFF, 8)


def drive_once(bundle, arrivals):
    """One full cached run; returns (pipeline, loop dispatches)."""
    pipeline = QueryPipeline(
        bundle=bundle,
        policy=FixedConfigPolicy(CONFIG),
        engine=ServingEngine(default_engine_config()),
        generator=SimulatedGenerator(
            quality=QualityModel(bundle.quality_params), root_seed=SEED),
        cache_config=make_cache_config(result_cache="exact",
                                       retrieval_cache=True),
    )
    pipeline.run(arrivals)
    return pipeline, pipeline.loop.n_dispatched


def test_cache_zipf_throughput():
    bundle = build_dataset("finsec", seed=SEED, n_queries=POOL)
    trace = zipfian_workload(seed=SEED, **TRACE)
    arrivals = trace.materialize(bundle.queries, seed=SEED)
    drive_once(bundle, arrivals)  # warm-up (imports, caches)
    timings = []
    pipeline = dispatched = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        pipeline, dispatched = drive_once(bundle, arrivals)
        timings.append(time.perf_counter() - start)
    best = min(timings)
    events_per_sec = dispatched / best if best > 0 else 0.0

    stats = pipeline.cache_stats()
    records = pipeline.records
    assert len(records) == len(arrivals)  # every arrival completed
    hits = sum(1 for r in records if r.cache_hit)
    hit_rate = hits / len(records)
    assert hit_rate > 0.3  # the Zipf head must actually hit

    artifact = write_artifact("cache_zipf.json", {
        "benchmark": "cache_zipf",
        "n_arrivals": len(arrivals),
        "pool_size": POOL,
        "hit_rate": hit_rate,
        "result_hit_rate": stats["result"].hit_rate,
        "retrieval_hit_rate": stats["retrieval"].hit_rate,
        "saved_dollars": stats["result"].saved_dollars,
        "events_per_run": dispatched,
        "best_seconds": best,
        "events_per_sec": events_per_sec,
        "fast_mode": FAST,
    })
    print(f"\ncache zipf: {hit_rate:.1%} hit rate, "
          f"{events_per_sec:,.0f} events/sec -> {artifact}")
