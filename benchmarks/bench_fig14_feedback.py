"""Benchmark: regenerate the paper's fig14_feedback via its experiment driver."""

import pytest

from repro.experiments import fig14_feedback

from conftest import run_experiment


@pytest.mark.benchmark(group="fig14_feedback")
def test_fig14_feedback(benchmark, bench_fast):
    run_experiment(benchmark, fig14_feedback, bench_fast)
