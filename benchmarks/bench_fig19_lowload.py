"""Benchmark: regenerate the paper's fig19_lowload via its experiment driver."""

import pytest

from repro.experiments import fig19_lowload

from conftest import run_experiment


@pytest.mark.benchmark(group="fig19_lowload")
def test_fig19_lowload(benchmark, bench_fast):
    run_experiment(benchmark, fig19_lowload, bench_fast)
