"""Pure-kernel events/sec micro-benchmark (no serving stack).

Exercises the calendar-queue pending set with the schedule / cancel /
reschedule / dispatch mix a hedged, autoscaled run produces: every
"work" event arms a hedge-timeout in the near future, most timeouts
are cancelled before firing (the primary lane won), a fraction get
rescheduled (deadline re-estimation), and the survivors dispatch —
so tombstone compaction, bucket reuse, and the far-heap fallback all
stay on the measured path. Isolating the kernel from the engine makes
kernel regressions visible even when engine-level wins mask them in
``bench_cluster_events.py``.

Deterministic op tape (seeded streams, generated outside the timed
region); gated as a wall-clock floor in ``check_regression.py``.
"""

from __future__ import annotations

import time

from repro.sim import EventLoop
from repro.util.rng import RngStreams

from conftest import FAST, write_artifact

N_WORK = 4_000 if FAST else 30_000
ROUNDS = 2 if FAST else 5
#: One far-future "retirement audit" per this many work items lands in
#: the kernel's far-heap fallback instead of the near buckets.
FAR_EVERY = 64


def build_tape() -> list[tuple[float, float, int]]:
    """Pre-generate (arrival, hedge_delay, action) outside the timing.

    action: 0 = cancel the previous hedge (primary lane won),
    1 = reschedule it earlier (deadline re-estimate), 2 = leave it to
    fire (hedge lane won).
    """
    rng = RngStreams(11).get("bench", "kernel-micro")
    tape, t = [], 0.0
    for _ in range(N_WORK):
        t += float(rng.exponential(0.004))
        delay = float(rng.uniform(0.02, 0.4))
        u = float(rng.random())
        action = 0 if u < 0.70 else (1 if u < 0.85 else 2)
        tape.append((t, delay, action))
    return tape


def drive_once(tape: list[tuple[float, float, int]]) -> dict[str, int]:
    """Run the tape through a fresh loop; returns kernel op counts."""
    loop = EventLoop()
    hedges: list = []

    def on_timeout(now: float, _payload: object) -> None:
        pass

    def on_work(now: float, item: tuple[float, float, int]) -> None:
        _, delay, action = item
        if hedges:
            prev = hedges.pop()
            if action == 0:
                loop.cancel(prev)
            elif action == 1 and loop.is_pending(prev):
                hedges.append(loop.reschedule(prev, now + delay * 0.5))
        hedges.append(loop.schedule(now + delay, "hedge-timeout",
                                    on_timeout))

    for i, item in enumerate(tape):
        loop.schedule(item[0], "work", on_work, item)
        if i % FAR_EVERY == 0:
            # Far beyond the frontier: lands in the far-heap fallback.
            loop.schedule(item[0] + 10_000.0, "audit", on_timeout)
    loop.run()
    assert loop.n_scheduled == loop.n_dispatched + loop.n_cancelled
    return {
        "scheduled": loop.n_scheduled,
        "dispatched": loop.n_dispatched,
        "cancelled": loop.n_cancelled,
    }


def test_kernel_micro_throughput():
    tape = build_tape()
    drive_once(tape)  # warm-up
    timings, counts = [], {}
    for _ in range(ROUNDS):
        start = time.perf_counter()
        counts = drive_once(tape)
        timings.append(time.perf_counter() - start)
    best = min(timings)
    # Every schedule eventually dispatches or is cancelled; count all
    # three op kinds — they are the kernel work being measured.
    ops = counts["scheduled"] + counts["dispatched"] + counts["cancelled"]
    ops_per_sec = ops / best if best > 0 else 0.0
    assert counts["cancelled"] > N_WORK // 2  # the hedge mix engaged
    assert counts["dispatched"] > N_WORK  # work + surviving timeouts

    artifact = write_artifact("kernel_micro.json", {
        "benchmark": "kernel_micro_throughput",
        "n_work": N_WORK,
        "ops_per_run": ops,
        **counts,
        "best_seconds": best,
        "ops_per_sec": ops_per_sec,
        "fast_mode": FAST,
    })
    print(f"\nkernel micro: {ops_per_sec:,.0f} kernel ops/sec "
          f"({counts['dispatched']} dispatches, "
          f"{counts['cancelled']} cancels) -> {artifact}")
