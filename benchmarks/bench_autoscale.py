"""Day-long autoscaling trace benchmark for the workload engine.

Replays the ``fig_autoscale`` sweep (static-1 / static-peak /
reactive / forecast fleets over the same diurnal trace, idle capacity
priced) and writes a JSON artifact — SLO attainment, $/query, and p99
delay per fleet — next to ``bench_cluster_events.json`` so regressions
in the load/reporting path are diffable across runs. Runs under plain
pytest (no pytest-benchmark dependency) so the CI ``--fast`` smoke
job can execute it on a bare ``numpy + pytest`` install.
"""

from __future__ import annotations

import time

from repro.experiments import fig_autoscale

from conftest import FAST, write_artifact


def test_autoscale_trace():
    start = time.perf_counter()
    report = fig_autoscale.run(fast=FAST)
    wall_seconds = time.perf_counter() - start

    rows = {r["fleet"]: r for r in report.rows}
    assert set(rows) == {"static-1", "static-3", "reactive", "forecast"}
    # The headline shape the figure exists for (gated numerically by
    # check_regression.py; this is just the sanity floor).
    assert (rows["forecast"]["slo_attainment"]
            >= rows["static-3"]["slo_attainment"] - 0.02)
    assert (rows["forecast"]["dollars_per_query"]
            < rows["static-3"]["dollars_per_query"])

    artifact = write_artifact("autoscale_trace.json", {
        "benchmark": "autoscale_trace",
        "dataset": "finsec",
        "rows": [
            {
                "fleet": r["fleet"],
                "slo_attainment": r["slo_attainment"],
                "dollars_per_query": r["dollars_per_query"],
                "p99_delay_s": r["p99_delay_s"],
                "idle_fraction": r["idle_fraction"],
                "scale_ups": r["scale_ups"],
                "retires": r["retires"],
                "queries": r["queries"],
            }
            for r in report.rows
        ],
        "wall_seconds": wall_seconds,
        "fast_mode": FAST,
    })
    print()
    print(report.format())
    print(f"autoscale trace in {wall_seconds:.2f}s -> {artifact}")
