"""Benchmark: regenerate the paper's table1 via its experiment driver."""

import pytest

from repro.experiments import table1

from conftest import run_experiment


@pytest.mark.benchmark(group="table1")
def test_table1(benchmark, bench_fast):
    run_experiment(benchmark, table1, bench_fast)
